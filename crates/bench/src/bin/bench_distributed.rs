//! `bench_distributed` — machine-readable performance snapshot of
//! distributed deployments, written to `BENCH_9.json`.
//!
//! Runs the same read workload against a **local sharded** server (one
//! process, N in-process shards) and a **distributed** deployment (N
//! separate shard servers behind a coordinator, every hop a loopback
//! TCP socket), at 1 and 4 shards:
//!
//! 1. **count_many latency**: fixed-size batches against the quiesced
//!    server.  Locally the scatter is a function call per shard;
//!    distributed it is a pinned-epoch `count_many_at` round trip per
//!    shard — the p50 delta is the price of the network hop.
//! 2. **Scatter fan-out latency**: single-itemset counts, the smallest
//!    possible request, where the fan-out (1 vs 4 sockets awaited) is
//!    the whole story.
//!
//! Usage: `bench_distributed [OUT.json]` (default `BENCH_9.json`).

use bbs_remote::{CoordinatorEngine, CoordinatorOptions, NodeSpec, Topology};
use bbs_server::{Bind, Client, Engine, ServerConfig, ShardedEngine};
use bbs_shard::ShardedDeployment;
use bbs_storage::DiskDeployment;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARD_POINTS: [usize; 2] = [1, 4];
const WIDTH: usize = 1024;
const ROWS: u64 = 8192;
const INSERT_BATCH: u64 = 256;
const COUNT_MANY_MS: u64 = 500;
const FANOUT_MS: u64 = 400;
const COUNT_MANY_ITEMSETS: usize = 16;

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct LatencySummary {
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn summarize(mut samples_us: Vec<u64>) -> LatencySummary {
    samples_us.sort_unstable();
    LatencySummary {
        p50_us: quantile(&samples_us, 0.50),
        p99_us: quantile(&samples_us, 0.99),
        max_us: samples_us.last().copied().unwrap_or(0),
    }
}

impl LatencySummary {
    fn to_json(&self) -> String {
        format!(
            "{{ \"p50\": {}, \"p99\": {}, \"max\": {} }}",
            self.p50_us, self.p99_us, self.max_us
        )
    }
}

fn items_of(i: u64) -> Vec<u32> {
    vec![1, 2 + (i % 64) as u32, 100 + (i % 7) as u32]
}

fn connect(addr: &str) -> std::io::Result<Client> {
    Client::connect_tcp(addr).map_err(|e| std::io::Error::other(e.to_string()))
}

fn load(addr: &str) -> std::io::Result<()> {
    let mut client = connect(addr)?;
    for first in (0..ROWS).step_by(INSERT_BATCH as usize) {
        let batch: Vec<(u64, Vec<u32>)> = (first..(first + INSERT_BATCH).min(ROWS))
            .map(|i| (i, items_of(i)))
            .collect();
        client
            .insert(&batch)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }
    Ok(())
}

/// Quiesced `count_many` round trips: fixed-size itemset batches.
fn run_count_many(addr: &str) -> std::io::Result<(LatencySummary, f64)> {
    let mut client = connect(addr)?;
    let mut samples = Vec::new();
    let start = Instant::now();
    let window = Duration::from_millis(COUNT_MANY_MS);
    let mut round = 0u64;
    while start.elapsed() < window {
        let owned: Vec<Vec<u32>> = (0..COUNT_MANY_ITEMSETS as u64)
            .map(|k| vec![1u32, 2 + ((round + k) % 64) as u32])
            .collect();
        let itemsets: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let t0 = Instant::now();
        client
            .count_many(&itemsets)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        samples.push(t0.elapsed().as_micros() as u64);
        round += 1;
    }
    let per_s = samples.len() as f64 / start.elapsed().as_secs_f64();
    Ok((summarize(samples), per_s))
}

/// Single-itemset counts: the smallest request, dominated by the
/// per-shard fan-out.
fn run_fanout(addr: &str) -> std::io::Result<LatencySummary> {
    let mut client = connect(addr)?;
    let mut samples = Vec::new();
    let start = Instant::now();
    let window = Duration::from_millis(FANOUT_MS);
    let mut round = 0u64;
    while start.elapsed() < window {
        let items = vec![1u32, 2 + (round % 64) as u32];
        let t0 = Instant::now();
        client
            .count(&items)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        samples.push(t0.elapsed().as_micros() as u64);
        round += 1;
    }
    Ok(summarize(samples))
}

struct ReadRuns {
    count_many: LatencySummary,
    count_many_per_s: f64,
    fanout: LatencySummary,
}

fn measure(addr: &str) -> std::io::Result<ReadRuns> {
    load(addr)?;
    let (count_many, count_many_per_s) = run_count_many(addr)?;
    let fanout = run_fanout(addr)?;
    Ok(ReadRuns {
        count_many,
        count_many_per_s,
        fanout,
    })
}

fn shutdown(addr: &str) -> std::io::Result<()> {
    connect(addr)?
        .shutdown_server()
        .map_err(|e| std::io::Error::other(e.to_string()))
}

fn run_local(shards: usize) -> std::io::Result<ReadRuns> {
    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("bbs_bench9_local_{}_{}", std::process::id(), shards));
    ShardedDeployment::remove_files(&dir).ok();
    ShardedDeployment::create(
        &dir,
        shards,
        WIDTH,
        Arc::new(bbs_hash::Md5BloomHasher::new(4)),
        4096,
    )?;
    let engine = ShardedEngine::open(&dir, ServerConfig::default())?;
    let handle = bbs_server::serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    let runs = measure(&addr)?;
    shutdown(&addr)?;
    handle.join();
    ShardedDeployment::remove_files(&dir).ok();
    Ok(runs)
}

fn run_distributed(shards: usize) -> std::io::Result<ReadRuns> {
    let mut handles = Vec::new();
    let mut nodes = Vec::new();
    let mut bases = Vec::new();
    for s in 0..shards {
        let mut base: PathBuf = std::env::temp_dir();
        base.push(format!("bbs_bench9_dist_{}_{}_{}", std::process::id(), shards, s));
        DiskDeployment::remove_files(&base).ok();
        let engine = Engine::open(
            &base,
            ServerConfig {
                width: WIDTH,
                ..ServerConfig::default()
            },
        )?;
        let handle = bbs_server::serve(
            engine,
            &Bind {
                tcp: Some("127.0.0.1:0".into()),
                unix: None,
            },
        )?;
        nodes.push(NodeSpec {
            id: s as u32,
            primary: handle.tcp_addr().expect("tcp bound").to_string(),
            follower: None,
        });
        handles.push(handle);
        bases.push(base);
    }
    let topology = Topology {
        version: bbs_remote::TOPOLOGY_VERSION,
        shards,
        width: WIDTH,
        hasher: "md5/4".into(),
        nodes,
    };
    let coordinator = CoordinatorEngine::connect(topology, CoordinatorOptions::default())?;
    let ch = bbs_server::serve(
        coordinator,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = ch.tcp_addr().expect("tcp bound").to_string();
    let runs = measure(&addr)?;
    shutdown(&addr)?;
    ch.join();
    for handle in &handles {
        shutdown(&handle.tcp_addr().expect("tcp bound").to_string())?;
    }
    for handle in handles {
        handle.join();
    }
    for base in bases {
        DiskDeployment::remove_files(&base).ok();
    }
    Ok(runs)
}

struct Point {
    shards: usize,
    local: ReadRuns,
    distributed: ReadRuns,
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    let mut points = Vec::new();
    for shards in SHARD_POINTS {
        eprintln!("# {shards} shard(s): {ROWS} rows, count_many x{COUNT_MANY_ITEMSETS}");
        let local = run_local(shards)?;
        eprintln!(
            "#   local sharded: count_many p50 {} us, fan-out p50 {} us",
            local.count_many.p50_us, local.fanout.p50_us
        );
        let distributed = run_distributed(shards)?;
        eprintln!(
            "#   distributed:   count_many p50 {} us, fan-out p50 {} us",
            distributed.count_many.p50_us, distributed.fanout.p50_us
        );
        points.push(Point {
            shards,
            local,
            distributed,
        });
    }
    let top = points.last().expect("at least one point");
    let overhead =
        top.distributed.count_many.p50_us as f64 / top.local.count_many.p50_us.max(1) as f64;
    eprintln!(
        "# network-hop overhead at {} shards: {overhead:.2}x on count_many p50",
        top.shards
    );

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 9,\n");
    json.push_str("  \"config\": {\n");
    json.push_str(&format!("    \"host_cpus\": {cpus},\n"));
    json.push_str(&format!("    \"width\": {WIDTH},\n"));
    json.push_str(&format!("    \"rows\": {ROWS},\n"));
    json.push_str(&format!(
        "    \"count_many_itemsets\": {COUNT_MANY_ITEMSETS},\n"
    ));
    json.push_str(&format!("    \"count_many_window_ms\": {COUNT_MANY_MS},\n"));
    json.push_str(&format!("    \"fanout_window_ms\": {FANOUT_MS}\n"));
    json.push_str("  },\n");
    json.push_str("  \"points\": [\n");
    for (i, point) in points.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"shards\": {},\n", point.shards));
        for (key, runs, comma) in [
            ("local_sharded", &point.local, ","),
            ("distributed", &point.distributed, ""),
        ] {
            json.push_str(&format!("      \"{key}\": {{\n"));
            json.push_str(&format!(
                "        \"count_many_batches_per_s\": {:.1},\n",
                runs.count_many_per_s
            ));
            json.push_str(&format!(
                "        \"count_many_us\": {},\n",
                runs.count_many.to_json()
            ));
            json.push_str(&format!(
                "        \"fanout_us\": {}\n",
                runs.fanout.to_json()
            ));
            json.push_str(&format!("      }}{comma}\n"));
        }
        json.push_str(if i + 1 == points.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"network_overhead_at_{}_shards\": {overhead:.2}\n",
        top.shards
    ));
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
