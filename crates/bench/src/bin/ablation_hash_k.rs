//! Ablation A1: sensitivity to the number of hash functions per item.

use bbs_bench::experiments::{run_ablation_hash_k, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_ablation_hash_k(&p, &sweeps::ks(&p)).print();
}
