//! `bench_count_many` — machine-readable snapshot of the batched counting
//! path, written to `BENCH_7.json`.
//!
//! Three experiments over one deployment:
//!
//! 1. **Server, per-op vs batched**: an in-process `bbs-server` on TCP
//!    loopback, quiesced.  The per-op baseline issues one `count` frame
//!    per itemset; the batched runs issue `count_many` frames carrying
//!    1/8/64/512 itemsets and are charged per *itemset* answered.  The
//!    headline number is the batch-64 speedup over per-op.
//! 2. **Storage, shared scan and projection**: the same comparison
//!    without the wire — `DiskCounter::count` per-op, `count_many`
//!    batches, and `count_extensions_projected` batches (sibling
//!    candidates sharing a mined prefix, the miner's shape).
//! 3. **Kernel tiers**: the fused AND+popcount at every dispatch tier
//!    the host supports, portable through AVX-512 VPOPCNTDQ.
//!
//! Usage: `bench_count_many [OUT.json]` (default `BENCH_7.json`).

use bbs_bitslice::ops_simd::{self, Tier};
use bbs_server::{Bind, Client, Engine, ServerConfig};
use bbs_storage::DiskDeployment;
use bbs_tdb::{ItemId, Itemset};
use std::time::Instant;

const ROWS: u64 = 60_000;
const WINDOW_MS: u64 = 400;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

fn items_of(i: u64) -> Vec<u32> {
    vec![1, 2 + (i % 64) as u32, 100 + (i % 7) as u32]
}

/// The query pool: sibling candidates `{1, 100} ∪ {x}` over the ingested
/// vocabulary — the miner's candidate-counting shape (64 extensions of one
/// enumeration prefix), which is exactly the workload `count_many` batches.
fn query_pool() -> Vec<Vec<u32>> {
    (0..64u64)
        .map(|i| vec![1, 100, 2 + (i % 64) as u32])
        .collect()
}

/// Runs `f` (which answers `n` itemsets per call) until the window
/// elapses; returns itemsets answered per second.
fn measure(window_ms: u64, n: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let budget = std::time::Duration::from_millis(window_ms);
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget {
        f();
        calls += 1;
    }
    calls as f64 * n as f64 / start.elapsed().as_secs_f64()
}

/// Measures several modes with *interleaved* windows so slow clock drift
/// (turbo decay, background load) cannot bias whichever mode happens to
/// run first: each round gives every mode one `window_ms` window, and the
/// rates come from the per-mode totals across all rounds.  `counts[m]`
/// is how many itemsets one `run(m)` call answers; returns itemsets/s
/// per mode.
fn measure_interleaved(
    window_ms: u64,
    rounds: usize,
    counts: &[usize],
    mut run: impl FnMut(usize),
) -> Vec<f64> {
    for m in 0..counts.len() {
        for _ in 0..3 {
            run(m);
        }
    }
    let budget = std::time::Duration::from_millis(window_ms);
    let mut calls = vec![0u64; counts.len()];
    let mut elapsed = vec![0f64; counts.len()];
    for _ in 0..rounds {
        for m in 0..counts.len() {
            let start = Instant::now();
            while start.elapsed() < budget {
                run(m);
                calls[m] += 1;
            }
            elapsed[m] += start.elapsed().as_secs_f64();
        }
    }
    (0..counts.len())
        .map(|m| calls[m] as f64 * counts[m] as f64 / elapsed[m])
        .collect()
}

fn json_series(name: &str, pairs: &[(usize, f64)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(b, v)| format!("      \"{b}\": {v:.1}"))
        .collect();
    format!("    \"{name}\": {{\n{}\n    }}", body.join(",\n"))
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_7.json".to_string());
    let mut base = std::env::temp_dir();
    base.push(format!("bbs_bench7_{}", std::process::id()));
    DiskDeployment::remove_files(&base).ok();

    let cfg = ServerConfig {
        width: 1024,
        cache_pages: 4096,
        ..ServerConfig::default()
    };
    let engine = Engine::open(&base, cfg)?;
    let handle = bbs_server::serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    let mut client =
        Client::connect_tcp(&addr).map_err(|e| std::io::Error::other(e.to_string()))?;
    eprintln!("# serving on {addr}, ingesting {ROWS} rows (active tier: {})",
        ops_simd::active_tier().name());
    for first in (0..ROWS).step_by(512) {
        let batch: Vec<(u64, Vec<u32>)> = (first..(first + 512).min(ROWS))
            .map(|i| (i, items_of(i)))
            .collect();
        client
            .insert(&batch)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
    }

    // Experiment 1: quiesced server, per-op frames vs count_many frames.
    // Modes share interleaved windows (mode 0 = per-op, then one mode per
    // batch size) so the comparison is immune to clock-speed drift.
    let pool = query_pool();
    let refs: Vec<&[u32]> = pool.iter().map(|q| q.as_slice()).collect();
    // Cycle the pool out to each batch size so every request carries
    // exactly `b` itemsets.
    let batches: Vec<Vec<&[u32]>> = BATCH_SIZES
        .iter()
        .map(|&b| (0..b).map(|i| refs[i % refs.len()]).collect())
        .collect();
    let mut counts = vec![pool.len()];
    counts.extend_from_slice(&BATCH_SIZES);
    let rates = measure_interleaved(WINDOW_MS / 2, 4, &counts, |m| {
        if m == 0 {
            for q in &refs {
                client.count(q).expect("count");
            }
        } else {
            client.count_many(&batches[m - 1]).expect("count_many");
        }
    });
    let per_op_per_s = rates[0];
    eprintln!("#   server per-op: {per_op_per_s:.0} counts/s");
    let mut server_batched = Vec::new();
    for (i, &b) in BATCH_SIZES.iter().enumerate() {
        let per_s = rates[i + 1];
        eprintln!("#   server batch {b}: {per_s:.0} counts/s ({:.2}x per-op)",
            per_s / per_op_per_s);
        server_batched.push((b, per_s));
    }
    let speedup_64 = server_batched
        .iter()
        .find(|(b, _)| *b == 64)
        .map(|(_, v)| v / per_op_per_s)
        .unwrap_or(0.0);

    let stats = client
        .stats()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    client
        .shutdown_server()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    handle.join();

    // Experiment 2: the storage layer alone (no wire), same deployment.
    let dep = DiskDeployment::open(
        &base,
        1024,
        std::sync::Arc::new(bbs_hash::Md5BloomHasher::new(4)),
        4096,
    )?;
    let mut reader = dep.index.counter()?;
    let itemsets: Vec<Itemset> = pool.iter().map(|q| Itemset::from_values(q)).collect();
    let disk_batches: Vec<Vec<Itemset>> = BATCH_SIZES
        .iter()
        .map(|&b| (0..b).map(|i| itemsets[i % itemsets.len()].clone()).collect())
        .collect();
    let disk_rates = measure_interleaved(WINDOW_MS / 2, 4, &counts, |m| {
        if m == 0 {
            for q in &itemsets {
                reader.count(q, None).expect("count");
            }
        } else {
            reader
                .count_many(&disk_batches[m - 1], None)
                .expect("count_many");
        }
    });
    let disk_per_op_per_s = disk_rates[0];
    eprintln!("#   disk per-op: {disk_per_op_per_s:.0} counts/s");
    let mut disk_batched = Vec::new();
    for (i, &b) in BATCH_SIZES.iter().enumerate() {
        let per_s = disk_rates[i + 1];
        eprintln!("#   disk batch {b}: {per_s:.0} counts/s ({:.2}x per-op)",
            per_s / disk_per_op_per_s);
        disk_batched.push((b, per_s));
    }
    // The miner's shape: siblings `prefix ∪ {e}` sharing one prefix, the
    // prefix AND materialised once per chunk and projected extensions on
    // top, vs counting each union independently.
    let prefix = Itemset::from_values(&[1, 100]);
    let mut projected = Vec::new();
    for &b in &BATCH_SIZES {
        let exts: Vec<ItemId> = (0..b).map(|i| ItemId(2 + (i % 64) as u32)).collect();
        let unions: Vec<Itemset> = exts
            .iter()
            .map(|e| Itemset::from_values(&[1, 100, e.0]))
            .collect();
        let pair = measure_interleaved(WINDOW_MS / 2, 4, &[b, b], |m| {
            if m == 0 {
                for u in &unions {
                    reader.count(u, None).expect("count");
                }
            } else {
                reader
                    .count_extensions_projected(&prefix, &exts, None)
                    .expect("projected");
            }
        });
        let (union_per_s, proj_per_s) = (pair[0], pair[1]);
        eprintln!(
            "#   projected batch {b}: {proj_per_s:.0} counts/s ({:.2}x per-op unions)",
            proj_per_s / union_per_s
        );
        projected.push((b, union_per_s, proj_per_s));
    }
    drop(reader);
    drop(dep);
    DiskDeployment::remove_files(&base).ok();

    // Experiment 3: kernel tiers on synthetic operands (1 Mibit each).
    let words = 32 * ops_simd::BLOCK_WORDS;
    let slices: Vec<Vec<u64>> = (0..4u64)
        .map(|i| {
            let mut state = 0xC0FF_EE00u64 | (i + 1);
            (0..words)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                })
                .collect()
        })
        .collect();
    let operand_refs: Vec<&[u64]> = slices.iter().map(|s| s.as_slice()).collect();
    let mut tiers: Vec<(&str, f64)> = Vec::new();
    let mut tier_run = |name: &'static str, tier: Tier| {
        let per_s = measure(300, 1, || {
            std::hint::black_box(ops_simd::and_all_count_tier(
                tier,
                &operand_refs,
                words,
                None,
            ));
        });
        eprintln!("#   kernel {name}: {per_s:.0} ops/s");
        tiers.push((name, per_s));
    };
    tier_run("portable", Tier::Portable);
    tier_run("blocked", Tier::Scalar);
    if ops_simd::avx2_available() {
        tier_run("avx2", Tier::Avx2);
    }
    if ops_simd::avx512_available() {
        tier_run("avx512", Tier::Avx512);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 7,\n");
    json.push_str(&format!(
        "  \"active_tier\": \"{}\",\n",
        ops_simd::active_tier().name()
    ));
    json.push_str(&format!("  \"rows\": {ROWS},\n"));
    json.push_str(&format!("  \"pool_itemsets\": {},\n", pool.len()));
    json.push_str("  \"server\": {\n");
    json.push_str(&format!(
        "    \"per_op_counts_per_s\": {per_op_per_s:.1},\n"
    ));
    json.push_str(&json_series("batched_counts_per_s", &server_batched));
    json.push_str(",\n");
    json.push_str(&format!(
        "    \"speedup_batch64_vs_per_op\": {speedup_64:.2}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"storage\": {\n");
    json.push_str(&format!(
        "    \"per_op_counts_per_s\": {disk_per_op_per_s:.1},\n"
    ));
    json.push_str(&json_series("batched_counts_per_s", &disk_batched));
    json.push_str(",\n");
    json.push_str("    \"projected\": {\n");
    for (i, (b, union_per_s, proj_per_s)) in projected.iter().enumerate() {
        json.push_str(&format!(
            "      \"{b}\": {{ \"union_per_op_counts_per_s\": {union_per_s:.1}, \"projected_counts_per_s\": {proj_per_s:.1} }}{}\n",
            if i + 1 < projected.len() { "," } else { "" }
        ));
    }
    json.push_str("    }\n");
    json.push_str("  },\n");
    json.push_str("  \"kernel_tiers_ops_per_s\": {\n");
    for (i, (name, per_s)) in tiers.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {per_s:.1}{}\n",
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"server_stats\": ");
    json.push_str(stats.trim());
    json.push('\n');
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
