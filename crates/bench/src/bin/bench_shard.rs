//! `bench_shard` — machine-readable performance snapshot of sharded
//! deployments, written to `BENCH_8.json`.
//!
//! Runs the same workload against a 1-shard and a 4-shard deployment,
//! each served in process over a TCP loopback socket:
//!
//! 1. **Ingest throughput**: W writer clients stream fixed-size insert
//!    batches for a wall-clock window.  Unsharded, every batch funnels
//!    through one group-commit pipeline; sharded, the router deals each
//!    batch to N independent pipelines that compute signatures and fsync
//!    concurrently — the txns/s ratio is the headline number.
//! 2. **count_many latency**: a reader client issues fixed-size
//!    `count_many` batches against the quiesced server; sharded, each
//!    batch scatter-gathers across every shard's shared-scan executor.
//!
//! Usage: `bench_shard [OUT.json]` (default `BENCH_8.json`).

use bbs_server::{Bind, Client, ClientError, ServerConfig, ShardedEngine};
use bbs_shard::ShardedDeployment;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARD_POINTS: [usize; 2] = [1, 4];
const WRITERS: usize = 8;
const BATCH: u64 = 64;
const INGEST_MS: u64 = 1500;
const COUNT_MANY_MS: u64 = 600;
const COUNT_MANY_ITEMSETS: usize = 16;
const WIDTH: usize = 1024;

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx]
}

struct LatencySummary {
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

fn summarize(mut samples_us: Vec<u64>) -> LatencySummary {
    samples_us.sort_unstable();
    LatencySummary {
        p50_us: quantile(&samples_us, 0.50),
        p99_us: quantile(&samples_us, 0.99),
        max_us: samples_us.last().copied().unwrap_or(0),
    }
}

fn items_of(i: u64) -> Vec<u32> {
    vec![1, 2 + (i % 64) as u32, 100 + (i % 7) as u32]
}

struct IngestResult {
    txns: u64,
    inserts: u64,
    overloaded: u64,
    secs: f64,
    latency: LatencySummary,
}

fn run_ingest(addr: &str) -> std::io::Result<IngestResult> {
    let stop = Arc::new(AtomicBool::new(false));
    let next_row = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let workers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let addr = addr.to_string();
            let stop = Arc::clone(&stop);
            let next_row = Arc::clone(&next_row);
            std::thread::spawn(move || -> std::io::Result<(u64, u64, u64, Vec<u64>)> {
                let mut client = Client::connect_tcp(&addr)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                let mut samples = Vec::new();
                let (mut txns, mut inserts, mut overloaded) = (0u64, 0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    let first = next_row.fetch_add(BATCH, Ordering::AcqRel);
                    let batch: Vec<(u64, Vec<u32>)> =
                        (first..first + BATCH).map(|i| (i, items_of(i))).collect();
                    loop {
                        let t0 = Instant::now();
                        match client.insert(&batch) {
                            Ok(_) => {
                                samples.push(t0.elapsed().as_micros() as u64);
                                txns += BATCH;
                                inserts += 1;
                                break;
                            }
                            Err(ClientError::Overloaded) => {
                                overloaded += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => return Err(std::io::Error::other(e.to_string())),
                        }
                    }
                }
                Ok((txns, inserts, overloaded, samples))
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(INGEST_MS));
    stop.store(true, Ordering::Release);
    let mut all = Vec::new();
    let (mut txns, mut inserts, mut overloaded) = (0u64, 0u64, 0u64);
    for w in workers {
        let (t, i, o, samples) = w.join().expect("writer thread")?;
        txns += t;
        inserts += i;
        overloaded += o;
        all.extend(samples);
    }
    Ok(IngestResult {
        txns,
        inserts,
        overloaded,
        secs: start.elapsed().as_secs_f64(),
        latency: summarize(all),
    })
}

/// Quiesced `count_many` round-trips: fixed-size batches of small
/// itemsets, measured end to end over the wire.
fn run_count_many(addr: &str) -> std::io::Result<(LatencySummary, f64)> {
    let mut client =
        Client::connect_tcp(addr).map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut samples = Vec::new();
    let start = Instant::now();
    let window = Duration::from_millis(COUNT_MANY_MS);
    let mut round = 0u64;
    while start.elapsed() < window {
        let owned: Vec<Vec<u32>> = (0..COUNT_MANY_ITEMSETS as u64)
            .map(|k| vec![1u32, 2 + ((round + k) % 64) as u32])
            .collect();
        let itemsets: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let t0 = Instant::now();
        client
            .count_many(&itemsets)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        samples.push(t0.elapsed().as_micros() as u64);
        round += 1;
    }
    let per_s = samples.len() as f64 / start.elapsed().as_secs_f64();
    Ok((summarize(samples), per_s))
}

struct ShardRun {
    shards: usize,
    ingest: IngestResult,
    count_many: LatencySummary,
    count_many_per_s: f64,
    shard_rows: Vec<u64>,
}

fn run_point(shards: usize) -> std::io::Result<ShardRun> {
    let mut dir: PathBuf = std::env::temp_dir();
    dir.push(format!("bbs_bench8_{}_{}", std::process::id(), shards));
    ShardedDeployment::remove_files(&dir).ok();
    ShardedDeployment::create(
        &dir,
        shards,
        WIDTH,
        Arc::new(bbs_hash::Md5BloomHasher::new(4)),
        4096,
    )?;
    let engine = ShardedEngine::open(&dir, ServerConfig::default())?;
    let handle = bbs_server::serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )?;
    let addr = handle.tcp_addr().expect("tcp bound").to_string();
    eprintln!("# {shards} shard(s) on {addr}: {WRITERS} writers x {BATCH}-txn batches, {INGEST_MS} ms window");

    let ingest = run_ingest(&addr)?;
    eprintln!(
        "#   ingest: {:.0} txns/s ({} inserts, {} overloaded), insert p50 {} us p99 {} us",
        ingest.txns as f64 / ingest.secs,
        ingest.inserts,
        ingest.overloaded,
        ingest.latency.p50_us,
        ingest.latency.p99_us
    );

    let (count_many, count_many_per_s) = run_count_many(&addr)?;
    eprintln!(
        "#   count_many x{COUNT_MANY_ITEMSETS} (quiesced): {:.0} batches/s, p50 {} us p99 {} us",
        count_many_per_s, count_many.p50_us, count_many.p99_us
    );

    let shard_rows: Vec<u64> = handle
        .engine()
        .engines()
        .iter()
        .map(|e| e.snapshot().rows())
        .collect();
    let mut client =
        Client::connect_tcp(&addr).map_err(|e| std::io::Error::other(e.to_string()))?;
    if std::env::var_os("BENCH_SHARD_DEBUG").is_some() {
        let stats = client
            .stats()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        eprintln!("#   stats: {stats}");
        for (i, e) in handle.engine().engines().iter().enumerate() {
            let m = e.metrics();
            eprintln!(
                "#   shard {i}: commits={} batch_sum={} commit_us={}",
                m.commit_us.count(),
                m.batch_size.sum(),
                m.commit_us.to_json(),
            );
        }
    }
    client
        .shutdown_server()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    handle.join();
    ShardedDeployment::remove_files(&dir).ok();
    Ok(ShardRun {
        shards,
        ingest,
        count_many,
        count_many_per_s,
        shard_rows,
    })
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".to_string());

    let mut runs = Vec::new();
    for shards in SHARD_POINTS {
        runs.push(run_point(shards)?);
    }
    let base_rate = runs[0].ingest.txns as f64 / runs[0].ingest.secs;
    let top = runs.last().expect("at least one point");
    let top_rate = top.ingest.txns as f64 / top.ingest.secs;
    let speedup = top_rate / base_rate;
    eprintln!(
        "# ingest speedup at {} shards: {speedup:.2}x ({top_rate:.0} vs {base_rate:.0} txns/s)",
        top.shards
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": 8,\n");
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    json.push_str("  \"config\": {\n");
    json.push_str(&format!("    \"host_cpus\": {cpus},\n"));
    json.push_str(&format!("    \"writers\": {WRITERS},\n"));
    json.push_str(&format!("    \"batch\": {BATCH},\n"));
    json.push_str(&format!("    \"width\": {WIDTH},\n"));
    json.push_str(&format!("    \"ingest_window_ms\": {INGEST_MS},\n"));
    json.push_str(&format!(
        "    \"count_many_itemsets\": {COUNT_MANY_ITEMSETS}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"points\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let rows: Vec<String> = run.shard_rows.iter().map(u64::to_string).collect();
        json.push_str("    {\n");
        json.push_str(&format!("      \"shards\": {},\n", run.shards));
        json.push_str("      \"ingest\": {\n");
        json.push_str(&format!("        \"transactions\": {},\n", run.ingest.txns));
        json.push_str(&format!(
            "        \"txns_per_s\": {:.1},\n",
            run.ingest.txns as f64 / run.ingest.secs
        ));
        json.push_str(&format!("        \"inserts\": {},\n", run.ingest.inserts));
        json.push_str(&format!(
            "        \"overloaded_retries\": {},\n",
            run.ingest.overloaded
        ));
        json.push_str(&format!(
            "        \"insert_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
            run.ingest.latency.p50_us, run.ingest.latency.p99_us, run.ingest.latency.max_us
        ));
        json.push_str("      },\n");
        json.push_str("      \"count_many\": {\n");
        json.push_str(&format!(
            "        \"batches_per_s\": {:.1},\n",
            run.count_many_per_s
        ));
        json.push_str(&format!(
            "        \"batch_us\": {{ \"p50\": {}, \"p99\": {}, \"max\": {} }}\n",
            run.count_many.p50_us, run.count_many.p99_us, run.count_many.max_us
        ));
        json.push_str("      },\n");
        json.push_str(&format!("      \"shard_rows\": [{}]\n", rows.join(",")));
        json.push_str(if i + 1 == runs.len() { "    }\n" } else { "    },\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ingest_speedup_at_{}_shards\": {speedup:.2}\n",
        top.shards
    ));
    json.push_str("}\n");
    std::fs::write(&out, &json)?;
    println!("wrote {out}");
    Ok(())
}
