//! Figure 7: response time vs minimum support threshold.

use bbs_bench::experiments::{run_fig7, sweeps};
use bbs_bench::Profile;

fn main() {
    let p = Profile::from_env_and_args();
    run_fig7(&p, &sweeps::taus(&p)).print();
}
