//! Runs the complete figure-reproduction suite at quick scale under
//! `cargo bench` (custom harness — this is a table-producing experiment run,
//! not a statistical microbenchmark; use the `fig*` binaries with no flags
//! for paper-scale runs).

use bbs_bench::experiments::{self, sweeps};
use bbs_bench::Profile;

fn main() {
    // Respect `cargo bench -- --help`-style filter args minimally: any
    // argument simply selects quick mode (the default here anyway).
    let p = Profile::quick();
    println!(
        "BBS figure suite at quick scale (D={}, V={}, m={}, tau={}%)\n",
        p.transactions, p.items, p.width, p.tau_pct
    );

    let (fdr, time) = experiments::run_fig5(&p, &sweeps::widths(&p));
    fdr.print();
    time.print();
    experiments::run_fig6(&p).print();
    experiments::run_fig7(&p, &sweeps::taus(&p)).print();
    experiments::run_fig8(&p, &sweeps::sizes(&p)).print();
    experiments::run_fig9(&p, &sweeps::item_counts(&p)).print();
    experiments::run_fig10(&p, &sweeps::lengths(&p)).print();
    experiments::run_fig11(&p, &sweeps::budgets_kib(&p)).print();
    experiments::run_fig12(&p, 4, (p.transactions / 5).max(100)).print();
    experiments::run_fig13(&p).print();
    experiments::run_ablation_hash_k(&p, &sweeps::ks(&p)).print();
    experiments::run_ablation_integration(&p).print();
    experiments::run_ablation_tiered(&p, &sweeps::budgets_kib(&p)).print();
    experiments::run_ablation_counters(&p, &[p.tau_pct, p.tau_pct * 2.0]).print();
}
