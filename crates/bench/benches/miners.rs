//! Criterion benchmarks of the six mining algorithms end to end on a
//! quick-profile Quest dataset — the microbenchmark companion to the
//! figure-level experiment binaries.

use bbs_apriori::AprioriMiner;
use bbs_core::{Bbs, BbsMiner, Scheme};
use bbs_datagen::generate_db;
use bbs_fptree::FpGrowthMiner;
use bbs_hash::Md5BloomHasher;
use bbs_tdb::{FrequentPatternMiner, IoStats, SupportThreshold, TransactionDb};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn quick_db() -> TransactionDb {
    let p = bbs_bench::Profile::quick();
    generate_db(p.quest())
}

fn bench_miners(c: &mut Criterion) {
    let p = bbs_bench::Profile::quick();
    let db = quick_db();
    let threshold = SupportThreshold::percent(p.tau_pct);
    let mut io = IoStats::new();
    let bbs = Bbs::build(p.width, Arc::new(Md5BloomHasher::new(p.hash_k)), &db, &mut io);

    let mut group = c.benchmark_group("mine_quick_profile");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let mut miner = BbsMiner::with_index(scheme, bbs.clone());
                black_box(miner.mine(black_box(&db), threshold))
            })
        });
    }
    group.bench_function("APS", |b| {
        b.iter(|| black_box(AprioriMiner::new().mine(black_box(&db), threshold)))
    });
    group.bench_function("FPS", |b| {
        b.iter(|| black_box(FpGrowthMiner::new().mine(black_box(&db), threshold)))
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let p = bbs_bench::Profile::quick();
    let db = quick_db();
    let mut group = c.benchmark_group("index_build_quick_profile");
    group.sample_size(10);
    group.bench_function("bbs_build", |b| {
        b.iter(|| {
            let mut io = IoStats::new();
            black_box(Bbs::build(
                p.width,
                Arc::new(Md5BloomHasher::new(p.hash_k)),
                black_box(&db),
                &mut io,
            ))
        })
    });
    group.bench_function("fptree_build", |b| {
        b.iter(|| {
            let mut io = IoStats::new();
            black_box(bbs_fptree::build_tree(
                black_box(&db),
                p.tau_for(db.len()),
                &mut io,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_miners, bench_index_build);
criterion_main!(benches);
