//! Criterion micro-benchmarks for the hot kernels underneath the BBS index:
//! multi-way AND+popcount, signature construction, index insertion, and
//! `CountItemSet` end to end.

use bbs_bitslice::ops_simd::{self, Tier};
use bbs_bitslice::{ops, BitVec, Signature, SliceMatrix};
use bbs_core::Bbs;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_tdb::{IoStats, Itemset, Transaction, TransactionDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn deterministic_words(n: usize, seed: u64) -> Vec<u64> {
    // Simple xorshift fill: benchmark data only needs to be non-trivial.
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect()
}

fn bench_and_all_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("and_all_count");
    for &rows in &[10_000usize, 100_000] {
        let words = rows.div_ceil(64);
        let slices: Vec<Vec<u64>> = (0..4)
            .map(|i| deterministic_words(words, 0x9E37 + i as u64))
            .collect();
        let refs: Vec<&[u64]> = slices.iter().map(|s| s.as_slice()).collect();
        group.throughput(Throughput::Bytes((words * 8 * 4) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| ops::and_all_count(black_box(&refs), black_box(words)))
        });
    }
    group.finish();
}

/// The three dispatch tiers head to head on the same fused multi-way
/// AND+popcount: portable word loop (baseline), cache-blocked
/// autovectorizable scalar, and (where available) explicit AVX2.
fn bench_kernel_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_tiers");
    // 4 operands of 32 blocks x 512 words each (1 Mibit per operand).
    let words = 32 * ops_simd::BLOCK_WORDS;
    let slices: Vec<Vec<u64>> = (0..4)
        .map(|i| deterministic_words(words, 0xC0FF_EE00 + i as u64))
        .collect();
    let refs: Vec<&[u64]> = slices.iter().map(|s| s.as_slice()).collect();
    group.throughput(Throughput::Bytes((words * 8 * 4) as u64));
    group.bench_function("portable", |b| {
        b.iter(|| ops_simd::and_all_count_portable(black_box(&refs), black_box(words)))
    });
    group.bench_function("blocked_scalar", |b| {
        b.iter(|| {
            ops_simd::and_all_count_tier(Tier::Scalar, black_box(&refs), black_box(words), None)
        })
    });
    if ops_simd::avx2_available() {
        group.bench_function("blocked_avx2", |b| {
            b.iter(|| {
                ops_simd::and_all_count_tier(Tier::Avx2, black_box(&refs), black_box(words), None)
            })
        });
    }
    group.finish();
}

fn bench_signature_build(c: &mut Criterion) {
    let hasher = Md5BloomHasher::new(4);
    c.bench_function("md5_positions_per_item", |b| {
        let mut out = Vec::with_capacity(4);
        let mut item = 0u64;
        b.iter(|| {
            out.clear();
            item = item.wrapping_add(1);
            hasher.positions(black_box(item), 1600, &mut out);
            black_box(&out);
        })
    });

    c.bench_function("signature_of_10_item_txn", |b| {
        let db = TransactionDb::new();
        let mut io = IoStats::new();
        let bbs = Bbs::build(1600, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
        let items: Itemset = (0u32..10).map(|i| i * 97).collect();
        b.iter(|| black_box(bbs.signature_of(black_box(&items))))
    });
}

fn bench_insert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bbs_insert");
    group.throughput(Throughput::Elements(1));
    group.bench_function("m1600_k4_t10", |b| {
        let mut bbs = Bbs::new(1600, Arc::new(Md5BloomHasher::new(4)));
        let mut io = IoStats::new();
        let mut tid = 0u64;
        b.iter(|| {
            let items: Itemset = (0u32..10).map(|i| (tid as u32).wrapping_mul(31) + i).collect();
            let txn = Transaction::new(tid, items);
            tid += 1;
            bbs.insert(black_box(&txn), &mut io)
        })
    });
    group.finish();
}

fn bench_count_itemset(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_itemset");
    for &rows in &[1_000usize, 10_000] {
        let db = TransactionDb::from_itemsets((0..rows).map(|i| {
            (0u32..10)
                .map(|j| ((i as u32).wrapping_mul(17) + j * 13) % 1000)
                .collect::<Itemset>()
        }));
        let mut io = IoStats::new();
        let bbs = Bbs::build(1600, Arc::new(Md5BloomHasher::new(4)), &db, &mut io);
        let query = Itemset::from_values(&[13, 26]);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            let mut io = IoStats::new();
            b.iter(|| black_box(bbs.est_count(black_box(&query), &mut io)))
        });
    }
    group.finish();
}

fn bench_matrix_push_row(c: &mut Criterion) {
    c.bench_function("slice_matrix_push_row_w40", |b| {
        let mut m = SliceMatrix::new(1600);
        let sig = Signature::from_positions(1600, &(0..40).map(|i| i * 37).collect::<Vec<_>>());
        b.iter(|| m.push_row(black_box(&sig)))
    });
}

fn bench_bitvec_ops(c: &mut Criterion) {
    let a = BitVec::from_words(deterministic_words(1563, 7), 100_000);
    let bvec = BitVec::from_words(deterministic_words(1563, 11), 100_000);
    c.bench_function("bitvec_and_count_100k", |b| {
        b.iter(|| black_box(a.and_count(black_box(&bvec))))
    });
    c.bench_function("bitvec_iter_ones_100k", |b| {
        b.iter(|| black_box(a.iter_ones().count()))
    });
}

criterion_group!(
    benches,
    bench_and_all_count,
    bench_kernel_tiers,
    bench_signature_build,
    bench_insert_throughput,
    bench_count_itemset,
    bench_matrix_push_row,
    bench_bitvec_ops
);
criterion_main!(benches);
