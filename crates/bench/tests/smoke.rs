//! Smoke tests: every experiment function runs end to end at micro scale
//! and produces a structurally sound table.  These guard the harness itself
//! (the figure binaries share all of this code), not the performance
//! numbers.

use bbs_bench::experiments::{self, sweeps};
use bbs_bench::{Profile, Table};

fn assert_table(t: &Table, expect_rows: usize) {
    assert!(!t.title.is_empty());
    assert!(t.headers.len() >= 2, "{}", t.title);
    assert_eq!(t.rows.len(), expect_rows, "{}", t.title);
    for row in &t.rows {
        assert_eq!(row.len(), t.headers.len(), "{}", t.title);
        assert!(row.iter().all(|c| !c.is_empty()), "{}", t.title);
    }
    // Render exercises the alignment machinery.
    let rendered = t.render();
    assert!(rendered.lines().count() >= expect_rows + 3, "{}", t.title);
}

#[test]
fn fig5_smoke() {
    let p = Profile::micro();
    let widths = [p.width, p.width * 2];
    let (fdr, time) = experiments::run_fig5(&p, &widths);
    assert_table(&fdr, 2);
    assert_table(&time, 2);
    // FDR must not increase with m.
    let fdr_at = |i: usize| fdr.rows[i][1].parse::<f64>().expect("fdr cell");
    assert!(fdr_at(1) <= fdr_at(0) + 1e-9);
}

#[test]
fn fig6_smoke() {
    let t = experiments::run_fig6(&Profile::micro());
    assert_table(&t, 6);
    // Every algorithm found the same number of patterns.
    let patterns: Vec<&str> = t.rows.iter().map(|r| r[2].as_str()).collect();
    assert!(patterns.windows(2).all(|w| w[0] == w[1]), "{patterns:?}");
}

#[test]
fn fig7_smoke() {
    let t = experiments::run_fig7(&Profile::micro(), &[4.0, 8.0]);
    assert_table(&t, 2);
    // Higher threshold, fewer patterns.
    let n = |i: usize| t.rows[i].last().expect("cell").parse::<u64>().expect("count");
    assert!(n(1) <= n(0));
}

#[test]
fn fig8_smoke() {
    let p = Profile::micro();
    let t = experiments::run_fig8(&p, &[p.transactions, p.transactions * 2]);
    assert_table(&t, 2);
}

#[test]
fn fig9_smoke() {
    let p = Profile::micro();
    let t = experiments::run_fig9(&p, &[p.items, p.items * 2]);
    assert_table(&t, 2);
}

#[test]
fn fig10_smoke() {
    let t = experiments::run_fig10(&Profile::micro(), &[6.0, 8.0]);
    assert_table(&t, 2);
}

#[test]
fn fig11_smoke() {
    let p = Profile::micro();
    let budgets = sweeps::budgets_kib(&p);
    let t = experiments::run_fig11(&p, &budgets);
    assert_table(&t, budgets.len());
}

#[test]
fn fig12_smoke() {
    let t = experiments::run_fig12(&Profile::micro(), 3, 100);
    assert_table(&t, 3);
    // The database grows monotonically.
    let size = |i: usize| t.rows[i][1].parse::<u64>().expect("size");
    assert!(size(0) <= size(1) && size(1) <= size(2));
}

#[test]
fn fig13_smoke() {
    let t = experiments::run_fig13(&Profile::micro());
    assert_table(&t, 2);
}

#[test]
fn ablation_hash_k_smoke() {
    let t = experiments::run_ablation_hash_k(&Profile::micro(), &[2, 4]);
    assert_table(&t, 2);
}

#[test]
fn ablation_integration_smoke() {
    let t = experiments::run_ablation_integration(&Profile::micro());
    assert_table(&t, 2);
    // Both variants saw the same candidate set.
    assert_eq!(t.rows[0][1], t.rows[1][1]);
}

#[test]
fn ablation_tiered_smoke() {
    let p = Profile::micro();
    let budgets = sweeps::budgets_kib(&p);
    let t = experiments::run_ablation_tiered(&p, &budgets);
    assert_table(&t, budgets.len());
}

#[test]
fn sweeps_respect_saturation_floor() {
    for p in [Profile::paper(), Profile::quick(), Profile::micro()] {
        let floor = sweeps::safe_width_floor(&p);
        for w in sweeps::widths(&p) {
            assert!(w >= floor, "width {w} below floor {floor}");
        }
        let slice_bytes = p.transactions.div_ceil(8);
        for kib in sweeps::budgets_kib(&p) {
            assert!(
                kib * 1024 >= floor * slice_bytes,
                "budget {kib}KiB folds below the floor"
            );
        }
    }
}

#[test]
fn ablation_counters_smoke() {
    let p = Profile::micro();
    let t = experiments::run_ablation_counters(&p, &[p.tau_pct]);
    assert_table(&t, 1);
}
