//! The Apriori baseline (the paper's **APS**).
//!
//! Classic level-wise mining (Agrawal & Srikant, VLDB '94): compute the
//! frequent 1-itemsets in one scan, then repeatedly *join* the frequent
//! `k`-itemsets into `(k+1)`-candidates, *prune* candidates with an
//! infrequent `k`-subset (downward closure), and *count* the survivors'
//! supports in one more database pass using a prefix trie (the in-memory
//! analogue of the original hash tree).
//!
//! A finite [`MemoryBudget`] chunks each level's candidate set, costing
//! extra database passes — the behaviour the paper's Fig. 11 measures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hashtree;
pub mod trie;

use bbs_tdb::{
    FrequentPatternMiner, IoStats, Itemset, MemoryBudget, MineResult, SupportThreshold,
    TransactionDb,
};
use hashtree::HashTree;
use trie::CandidateTrie;

/// Which candidate-counting structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// A prefix trie — the cache-friendly modern choice (default).
    Trie,
    /// The original VLDB '94 hash tree (ablation A4).
    HashTree,
}

/// The Apriori miner.
#[derive(Debug, Clone)]
pub struct AprioriMiner {
    budget: MemoryBudget,
    counter: CounterKind,
}

impl Default for AprioriMiner {
    fn default() -> Self {
        AprioriMiner::new()
    }
}

impl AprioriMiner {
    /// A miner with unlimited memory.
    pub fn new() -> Self {
        AprioriMiner {
            budget: MemoryBudget::unlimited(),
            counter: CounterKind::Trie,
        }
    }

    /// Selects the candidate-counting structure.
    pub fn with_counter(mut self, counter: CounterKind) -> Self {
        self.counter = counter;
        self
    }

    /// Restricts candidate storage to `budget`, forcing multi-pass counting
    /// per level when a level's candidate set does not fit.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }
}

/// Apriori candidate generation: join + prune.
///
/// `level` must contain all frequent `k`-itemsets, sorted ascending.
/// Returns the `(k+1)`-candidates whose every `k`-subset is frequent.
pub fn generate_candidates(level: &[Itemset]) -> Vec<Itemset> {
    if level.is_empty() {
        return Vec::new();
    }
    let k = level[0].len();
    debug_assert!(level.iter().all(|s| s.len() == k));
    debug_assert!(level.windows(2).all(|w| w[0] < w[1]), "level must be sorted");

    // Membership structure for the prune step.
    let members: std::collections::HashSet<&Itemset> = level.iter().collect();

    let mut out = Vec::new();
    // Join: two k-itemsets sharing their first k-1 items combine into a
    // (k+1)-itemset.  With the level sorted, joinable partners are adjacent
    // runs sharing a prefix.
    let mut run_start = 0usize;
    while run_start < level.len() {
        let prefix = &level[run_start].items()[..k - 1];
        let mut run_end = run_start + 1;
        while run_end < level.len() && &level[run_end].items()[..k - 1] == prefix {
            run_end += 1;
        }
        for i in run_start..run_end {
            for j in i + 1..run_end {
                let a = &level[i];
                let b = &level[j];
                let candidate = a.with_item(*b.items().last().expect("non-empty"));
                // Prune: every k-subset must be frequent.  Subsets obtained
                // by dropping one of the first k-1 items need checking; the
                // two "parents" are frequent by construction.
                let ok = candidate
                    .items()
                    .iter()
                    .take(k.saturating_sub(1))
                    .all(|&drop| members.contains(&candidate.without_item(drop)));
                if ok {
                    out.push(candidate);
                }
            }
        }
        run_start = run_end;
    }
    out.sort_unstable();
    out
}

impl FrequentPatternMiner for AprioriMiner {
    fn name(&self) -> &str {
        "APS"
    }

    fn mine(&mut self, db: &TransactionDb, min_support: SupportThreshold) -> MineResult {
        let tau = min_support.resolve(db.len());
        let mut result = MineResult::default();
        let mut io = IoStats::new();

        // Pass 1: frequent 1-itemsets.
        let singles = db.count_singletons(&mut io);
        result.stats.candidates += singles.len() as u64;
        let mut level: Vec<Itemset> = Vec::new();
        for (item, count) in singles {
            if count >= tau {
                let s = Itemset::from_items(vec![item]);
                result.patterns.insert(s.clone(), count);
                level.push(s);
            } else {
                result.stats.false_drops += 1;
            }
        }
        level.sort_unstable();

        // Levels 2, 3, …
        let mut k = 1usize;
        while !level.is_empty() {
            k += 1;
            let candidates = generate_candidates(&level);
            if candidates.is_empty() {
                break;
            }
            result.stats.candidates += candidates.len() as u64;

            let unit_bytes = match self.counter {
                CounterKind::Trie => CandidateTrie::candidate_bytes(k),
                CounterKind::HashTree => HashTree::candidate_bytes(k),
            };
            let chunk_size = self
                .budget
                .capacity_of(unit_bytes)
                .min(candidates.len());
            let mut next_level: Vec<Itemset> = Vec::new();
            for chunk in candidates.chunks(chunk_size.max(1)) {
                let mut counts = vec![0u64; chunk.len()];
                match self.counter {
                    CounterKind::Trie => {
                        let mut trie = CandidateTrie::new();
                        for (i, c) in chunk.iter().enumerate() {
                            trie.insert(c, i);
                        }
                        for txn in db.scan(&mut io) {
                            trie.count_subsets(txn.items.items(), &mut counts);
                        }
                    }
                    CounterKind::HashTree => {
                        let mut tree = HashTree::with_defaults(k);
                        for (i, c) in chunk.iter().enumerate() {
                            tree.insert(c, i);
                        }
                        for txn in db.scan(&mut io) {
                            tree.count_subsets(txn.items.items(), &mut counts);
                        }
                    }
                }
                for (c, &count) in chunk.iter().zip(&counts) {
                    if count >= tau {
                        result.patterns.insert(c.clone(), count);
                        next_level.push(c.clone());
                    } else {
                        result.stats.false_drops += 1;
                    }
                }
            }
            next_level.sort_unstable();
            level = next_level;
        }

        result.stats.io = io;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_datagen::QuestConfig;
    use bbs_tdb::{NaiveMiner, Transaction};

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn paper_db() -> TransactionDb {
        TransactionDb::from_transactions(vec![
            Transaction::new(100, set(&[0, 1, 2, 3, 4, 5, 14, 15])),
            Transaction::new(200, set(&[1, 2, 3, 5, 6, 7])),
            Transaction::new(300, set(&[1, 5, 14, 15])),
            Transaction::new(400, set(&[0, 1, 2, 7])),
            Transaction::new(500, set(&[1, 2, 5, 6, 11, 15])),
        ])
    }

    #[test]
    fn candidate_generation_join_and_prune() {
        // L2 = {12, 13, 14, 23, 24} → join gives 123, 124, 134, 234;
        // prune removes 134 (34 ∉ L2) and 234 (34 ∉ L2).
        let level = vec![
            set(&[1, 2]),
            set(&[1, 3]),
            set(&[1, 4]),
            set(&[2, 3]),
            set(&[2, 4]),
        ];
        let c = generate_candidates(&level);
        assert_eq!(c, vec![set(&[1, 2, 3]), set(&[1, 2, 4])]);
    }

    #[test]
    fn candidate_generation_from_singletons() {
        let level = vec![set(&[1]), set(&[2]), set(&[5])];
        let c = generate_candidates(&level);
        assert_eq!(c, vec![set(&[1, 2]), set(&[1, 5]), set(&[2, 5])]);
    }

    #[test]
    fn candidate_generation_empty() {
        assert!(generate_candidates(&[]).is_empty());
        assert!(generate_candidates(&[set(&[3])]).is_empty());
    }

    #[test]
    fn matches_oracle_on_paper_db() {
        let db = paper_db();
        for tau in [2u64, 3, 4, 5] {
            let oracle = NaiveMiner::new()
                .mine(&db, SupportThreshold::Count(tau))
                .patterns;
            let got = AprioriMiner::new()
                .mine(&db, SupportThreshold::Count(tau))
                .patterns;
            assert_eq!(got, oracle, "tau = {tau}");
        }
    }

    #[test]
    fn matches_oracle_on_generated_data() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        let oracle = NaiveMiner::new()
            .mine(&db, SupportThreshold::Fraction(0.05))
            .patterns;
        let got = AprioriMiner::new()
            .mine(&db, SupportThreshold::Fraction(0.05))
            .patterns;
        assert_eq!(got, oracle);
    }

    #[test]
    fn budgeted_run_same_answer_more_scans() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        let tau = SupportThreshold::Fraction(0.04);
        let free = AprioriMiner::new().mine(&db, tau);
        let tight = AprioriMiner::new()
            .with_budget(MemoryBudget::bytes(256))
            .mine(&db, tau);
        assert_eq!(free.patterns, tight.patterns);
        assert!(tight.stats.io.db_scans >= free.stats.io.db_scans);
    }

    #[test]
    fn scan_count_is_levels_when_unbudgeted() {
        let db = paper_db();
        let r = AprioriMiner::new().mine(&db, SupportThreshold::Count(3));
        // Longest frequent pattern has 3 items → scans for L1, C2, C3, C4
        // (C4 may be empty; when empty no scan happens).
        assert!(r.stats.io.db_scans >= 3 && r.stats.io.db_scans <= 4);
    }


    #[test]
    fn hash_tree_counter_matches_trie_counter() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        for pct in [3.0f64, 6.0] {
            let t = SupportThreshold::percent(pct);
            let trie = AprioriMiner::new().mine(&db, t).patterns;
            let tree = AprioriMiner::new()
                .with_counter(CounterKind::HashTree)
                .mine(&db, t)
                .patterns;
            assert_eq!(trie, tree, "pct = {pct}");
        }
    }

    #[test]
    fn hash_tree_counter_with_budget() {
        let db = bbs_datagen::generate_db(QuestConfig::tiny());
        let t = SupportThreshold::percent(4.0);
        let free = AprioriMiner::new()
            .with_counter(CounterKind::HashTree)
            .mine(&db, t);
        let tight = AprioriMiner::new()
            .with_counter(CounterKind::HashTree)
            .with_budget(MemoryBudget::bytes(512))
            .mine(&db, t);
        assert_eq!(free.patterns, tight.patterns);
        assert!(tight.stats.io.db_scans >= free.stats.io.db_scans);
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::new();
        let r = AprioriMiner::new().mine(&db, SupportThreshold::Count(1));
        assert!(r.patterns.is_empty());
    }
}
