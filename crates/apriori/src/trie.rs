//! A candidate prefix trie — the in-memory equivalent of Apriori's hash
//! tree, used to count candidate supports in one pass per chunk.

use bbs_tdb::{ItemId, Itemset};
use std::collections::HashMap;

/// A prefix trie over fixed-length candidate itemsets.
///
/// Each candidate is a sorted itemset of the same length `k`; counting walks
/// every transaction once, descending the trie along the transaction's
/// (sorted) items, and bumps a counter at each reached leaf.
#[derive(Debug, Default)]
pub struct CandidateTrie {
    root: Node,
    /// Number of candidates inserted.
    len: usize,
}

#[derive(Debug, Default)]
struct Node {
    children: HashMap<ItemId, Node>,
    /// Index into the caller's count array, set on leaves only.
    leaf: Option<usize>,
}

impl CandidateTrie {
    /// An empty trie.
    pub fn new() -> Self {
        CandidateTrie::default()
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a candidate with its external index.
    ///
    /// # Panics
    /// Panics if the same candidate is inserted twice.
    pub fn insert(&mut self, candidate: &Itemset, index: usize) {
        let mut node = &mut self.root;
        for &item in candidate.items() {
            node = node.children.entry(item).or_default();
        }
        assert!(node.leaf.is_none(), "duplicate candidate {candidate:?}");
        node.leaf = Some(index);
        self.len += 1;
    }

    /// For every candidate contained in `txn_items` (sorted ascending),
    /// increments the corresponding entry of `counts`.
    pub fn count_subsets(&self, txn_items: &[ItemId], counts: &mut [u64]) {
        Self::walk(&self.root, txn_items, counts);
    }

    fn walk(node: &Node, items: &[ItemId], counts: &mut [u64]) {
        if let Some(idx) = node.leaf {
            counts[idx] += 1;
            // Leaves have no children (all candidates share one length), so
            // stopping here is safe.
            return;
        }
        if node.children.is_empty() {
            return;
        }
        for (i, item) in items.iter().enumerate() {
            if let Some(child) = node.children.get(item) {
                Self::walk(child, &items[i + 1..], counts);
            }
        }
    }

    /// Approximate heap footprint of one candidate of length `k`, used for
    /// memory budgeting: a trie path of `k` nodes plus map overhead.
    pub fn candidate_bytes(k: usize) -> usize {
        48 * k.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn ids(vals: &[u32]) -> Vec<ItemId> {
        vals.iter().map(|&v| ItemId(v)).collect()
    }

    #[test]
    fn counts_contained_candidates() {
        let mut trie = CandidateTrie::new();
        trie.insert(&set(&[1, 2]), 0);
        trie.insert(&set(&[1, 3]), 1);
        trie.insert(&set(&[2, 4]), 2);
        assert_eq!(trie.len(), 3);

        let mut counts = vec![0u64; 3];
        trie.count_subsets(&ids(&[1, 2, 3]), &mut counts);
        assert_eq!(counts, vec![1, 1, 0]);
        trie.count_subsets(&ids(&[2, 4]), &mut counts);
        assert_eq!(counts, vec![1, 1, 1]);
        trie.count_subsets(&ids(&[5, 6]), &mut counts);
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn counts_singletons() {
        let mut trie = CandidateTrie::new();
        trie.insert(&set(&[7]), 0);
        let mut counts = vec![0u64];
        trie.count_subsets(&ids(&[1, 7, 9]), &mut counts);
        trie.count_subsets(&ids(&[7]), &mut counts);
        trie.count_subsets(&ids(&[8]), &mut counts);
        assert_eq!(counts[0], 2);
    }

    #[test]
    fn counts_each_candidate_once_per_transaction() {
        // A candidate must not be double-counted even when the walk could
        // reach it along overlapping positions.
        let mut trie = CandidateTrie::new();
        trie.insert(&set(&[1, 2, 3]), 0);
        let mut counts = vec![0u64];
        trie.count_subsets(&ids(&[1, 2, 3]), &mut counts);
        assert_eq!(counts[0], 1);
    }

    #[test]
    #[should_panic(expected = "duplicate candidate")]
    fn duplicate_insert_panics() {
        let mut trie = CandidateTrie::new();
        trie.insert(&set(&[1, 2]), 0);
        trie.insert(&set(&[1, 2]), 1);
    }

    #[test]
    fn exhaustive_cross_check_against_subset_test() {
        // All 3-subsets of {0..6} as candidates; random-ish transactions.
        let mut trie = CandidateTrie::new();
        let universe = set(&[0, 1, 2, 3, 4, 5, 6]);
        let candidates: Vec<Itemset> = universe.subsets_of_len(3).collect();
        for (i, c) in candidates.iter().enumerate() {
            trie.insert(c, i);
        }
        let txns = [
            ids(&[0, 1, 2, 3]),
            ids(&[2, 4, 6]),
            ids(&[0, 1, 2, 3, 4, 5, 6]),
            ids(&[5]),
            ids(&[]),
        ];
        let mut counts = vec![0u64; candidates.len()];
        for t in &txns {
            trie.count_subsets(t, &mut counts);
        }
        for (i, c) in candidates.iter().enumerate() {
            let expect = txns
                .iter()
                .filter(|t| {
                    let ts = Itemset::from_items((*t).clone());
                    c.is_subset_of(&ts)
                })
                .count() as u64;
            assert_eq!(counts[i], expect, "{c:?}");
        }
    }
}
