//! The original Apriori candidate **hash tree** (Agrawal & Srikant,
//! VLDB '94 §2.1.2) — the structure the paper's APS baseline would have
//! used in 2002, provided alongside the cache-friendly prefix trie so the
//! two counting strategies can be compared (ablation A4).
//!
//! Interior nodes hash the next transaction item into one of `fanout`
//! buckets; leaves hold up to `leaf_capacity` candidates and split when
//! they overflow (until depth reaches the candidate length `k`).  Counting
//! a transaction walks every distinct item choice per depth, so one leaf
//! can be reached along several paths; the classic per-candidate
//! transaction stamp prevents double counting.

use bbs_tdb::{ItemId, Itemset};

enum Node {
    Interior(Vec<Option<Box<Node>>>),
    Leaf(Vec<(Itemset, usize)>),
}

/// A hash tree over fixed-length candidate itemsets.
pub struct HashTree {
    root: Node,
    k: usize,
    fanout: usize,
    leaf_capacity: usize,
    len: usize,
    /// Per-candidate stamp of the last transaction counted, preventing
    /// double counts when several descent paths reach the same leaf.
    stamps: Vec<u64>,
    /// Monotonically increasing transaction sequence number.
    txn_seq: u64,
}

impl HashTree {
    /// Creates a hash tree for candidates of length `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`, `fanout < 2` or `leaf_capacity == 0`.
    pub fn new(k: usize, fanout: usize, leaf_capacity: usize) -> Self {
        assert!(k > 0, "candidate length must be positive");
        assert!(fanout >= 2, "fanout must be at least 2");
        assert!(leaf_capacity > 0, "leaf capacity must be positive");
        HashTree {
            root: Node::Leaf(Vec::new()),
            k,
            fanout,
            leaf_capacity,
            len: 0,
            stamps: Vec::new(),
            txn_seq: 0,
        }
    }

    /// Defaults matching the original paper's spirit: a moderate fanout and
    /// small leaves.
    pub fn with_defaults(k: usize) -> Self {
        HashTree::new(k, 16, 8)
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no candidates are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a candidate of length `k` with its external index.
    ///
    /// # Panics
    /// Panics if the candidate length differs from `k`.
    pub fn insert(&mut self, candidate: &Itemset, index: usize) {
        assert_eq!(candidate.len(), self.k, "candidate length mismatch");
        // Multiplicative scrambling spreads consecutive ids across buckets
        // (shared by insert and count paths via local closures).
        #[allow(clippy::too_many_arguments)]
        fn insert_at(
            tree_fanout: usize,
            tree_leaf_cap: usize,
            tree_k: usize,
            hash: &impl Fn(ItemId) -> usize,
            node: &mut Node,
            depth: usize,
            candidate: &Itemset,
            index: usize,
        ) {
            match node {
                Node::Interior(children) => {
                    let b = hash(candidate.items()[depth]);
                    let child = children[b].get_or_insert_with(|| Box::new(Node::Leaf(Vec::new())));
                    insert_at(
                        tree_fanout,
                        tree_leaf_cap,
                        tree_k,
                        hash,
                        child,
                        depth + 1,
                        candidate,
                        index,
                    );
                }
                Node::Leaf(entries) => {
                    entries.push((candidate.clone(), index));
                    // Split when overfull, unless the discriminating depth
                    // is exhausted (all k items consumed).
                    if entries.len() > tree_leaf_cap && depth < tree_k {
                        let moved = std::mem::take(entries);
                        let mut children: Vec<Option<Box<Node>>> =
                            (0..tree_fanout).map(|_| None).collect();
                        for (cand, idx) in moved {
                            let b = hash(cand.items()[depth]);
                            let child = children[b]
                                .get_or_insert_with(|| Box::new(Node::Leaf(Vec::new())));
                            // Children start as leaves; recurse to allow
                            // cascading splits of skewed buckets.
                            insert_at(
                                tree_fanout,
                                tree_leaf_cap,
                                tree_k,
                                hash,
                                child,
                                depth + 1,
                                &cand,
                                idx,
                            );
                        }
                        *node = Node::Interior(children);
                    }
                }
            }
        }
        let fanout = self.fanout;
        let hash = move |item: ItemId| (item.0 as usize).wrapping_mul(0x9E37_79B1) % fanout;
        insert_at(
            self.fanout,
            self.leaf_capacity,
            self.k,
            &hash,
            &mut self.root,
            0,
            candidate,
            index,
        );
        self.len += 1;
        if self.stamps.len() <= index {
            self.stamps.resize(index + 1, 0);
        }
    }

    /// For every stored candidate contained in `txn_items` (sorted
    /// ascending), increments the corresponding entry of `counts`.
    pub fn count_subsets(&mut self, txn_items: &[ItemId], counts: &mut [u64]) {
        if txn_items.len() < self.k {
            return;
        }
        self.txn_seq += 1;
        let seq = self.txn_seq;
        let fanout = self.fanout;
        let hash = move |item: ItemId| (item.0 as usize).wrapping_mul(0x9E37_79B1) % fanout;

        fn walk(
            node: &Node,
            items: &[ItemId],
            full_txn: &[ItemId],
            hash: &impl Fn(ItemId) -> usize,
            stamps: &mut [u64],
            seq: u64,
            counts: &mut [u64],
        ) {
            match node {
                Node::Leaf(entries) => {
                    for (cand, idx) in entries {
                        if stamps[*idx] != seq && contains_sorted(full_txn, cand) {
                            stamps[*idx] = seq;
                            counts[*idx] += 1;
                        }
                    }
                }
                Node::Interior(children) => {
                    for (i, &item) in items.iter().enumerate() {
                        if let Some(child) = &children[hash(item)] {
                            walk(child, &items[i + 1..], full_txn, hash, stamps, seq, counts);
                        }
                    }
                }
            }
        }
        walk(
            &self.root,
            txn_items,
            txn_items,
            &hash,
            &mut self.stamps,
            seq,
            counts,
        );
    }

    /// Approximate bytes per candidate for memory budgeting (comparable to
    /// [`crate::trie::CandidateTrie::candidate_bytes`]).
    pub fn candidate_bytes(k: usize) -> usize {
        40 + 8 * k
    }
}

/// `candidate ⊆ txn` for two sorted item slices.
fn contains_sorted(txn: &[ItemId], candidate: &Itemset) -> bool {
    let mut t = txn.iter();
    'outer: for c in candidate.items() {
        for x in t.by_ref() {
            match x.cmp(c) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(vals: &[u32]) -> Itemset {
        Itemset::from_values(vals)
    }

    fn ids(vals: &[u32]) -> Vec<ItemId> {
        vals.iter().map(|&v| ItemId(v)).collect()
    }

    #[test]
    fn counts_contained_candidates() {
        let mut tree = HashTree::with_defaults(2);
        tree.insert(&set(&[1, 2]), 0);
        tree.insert(&set(&[1, 3]), 1);
        tree.insert(&set(&[2, 4]), 2);
        let mut counts = vec![0u64; 3];
        tree.count_subsets(&ids(&[1, 2, 3]), &mut counts);
        assert_eq!(counts, vec![1, 1, 0]);
        tree.count_subsets(&ids(&[2, 4]), &mut counts);
        assert_eq!(counts, vec![1, 1, 1]);
    }

    #[test]
    fn no_double_counting_across_paths() {
        // Small fanout forces collisions; large transactions create many
        // descent paths to the same leaf.
        let mut tree = HashTree::new(2, 2, 1);
        tree.insert(&set(&[1, 2]), 0);
        tree.insert(&set(&[3, 4]), 1);
        tree.insert(&set(&[5, 6]), 2);
        tree.insert(&set(&[1, 6]), 3);
        let mut counts = vec![0u64; 4];
        tree.count_subsets(&ids(&[1, 2, 3, 4, 5, 6]), &mut counts);
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn transactions_shorter_than_k_count_nothing() {
        let mut tree = HashTree::with_defaults(3);
        tree.insert(&set(&[1, 2, 3]), 0);
        let mut counts = vec![0u64; 1];
        tree.count_subsets(&ids(&[1, 2]), &mut counts);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn splitting_preserves_candidates() {
        // Overfill leaves to force recursive splits.
        let mut tree = HashTree::new(2, 4, 2);
        let candidates: Vec<Itemset> = (0u32..20)
            .flat_map(|a| ((a + 1)..22).map(move |b| Itemset::from_values(&[a, b])))
            .take(60)
            .collect();
        for (i, c) in candidates.iter().enumerate() {
            tree.insert(c, i);
        }
        assert_eq!(tree.len(), 60);
        // A transaction containing everything must count every candidate.
        let all: Vec<ItemId> = (0u32..22).map(ItemId).collect();
        let mut counts = vec![0u64; 60];
        tree.count_subsets(&all, &mut counts);
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }

    proptest! {
        /// The hash tree and the prefix trie agree on arbitrary inputs.
        #[test]
        fn prop_agrees_with_trie(
            candidate_pool in proptest::collection::btree_set(
                proptest::collection::btree_set(0u32..30, 3..=3), 1..25),
            txns in proptest::collection::vec(
                proptest::collection::btree_set(0u32..30, 0..12), 1..20),
        ) {
            let candidates: Vec<Itemset> = candidate_pool
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            let mut tree = HashTree::new(3, 3, 2);
            let mut trie = crate::trie::CandidateTrie::new();
            for (i, c) in candidates.iter().enumerate() {
                tree.insert(c, i);
                trie.insert(c, i);
            }
            let mut tree_counts = vec![0u64; candidates.len()];
            let mut trie_counts = vec![0u64; candidates.len()];
            for t in &txns {
                let items: Vec<ItemId> = t.iter().copied().map(ItemId).collect();
                tree.count_subsets(&items, &mut tree_counts);
                trie.count_subsets(&items, &mut trie_counts);
            }
            prop_assert_eq!(tree_counts, trie_counts);
        }
    }
}
