//! End-to-end tests of the `bbs` subcommands through their library entry
//! points, using temp files.

use bbs_cli::args::Flags;
use bbs_cli::commands;
use std::path::PathBuf;

fn flags(pairs: &[(&str, &str)]) -> Flags {
    let mut argv: Vec<String> = Vec::new();
    for (k, v) in pairs {
        argv.push(format!("--{k}"));
        argv.push(v.to_string());
    }
    Flags::parse(argv)
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_cli_test_{}_{name}", std::process::id()));
    p
}

struct Cleanup(Vec<PathBuf>);
impl Drop for Cleanup {
    fn drop(&mut self) {
        for p in &self.0 {
            std::fs::remove_file(p).ok();
        }
    }
}

#[test]
fn generate_index_mine_count_pipeline() {
    let data = temp("pipeline.txt");
    let index = temp("pipeline.bbs");
    let _cleanup = Cleanup(vec![data.clone(), index.clone()]);
    let data_s = data.to_str().expect("utf8 path");
    let index_s = index.to_str().expect("utf8 path");

    commands::generate(&flags(&[
        ("out", data_s),
        ("transactions", "300"),
        ("items", "80"),
        ("avg-len", "6"),
        ("pattern-len", "3"),
        ("pattern-pool", "25"),
        ("seed", "11"),
    ]))
    .expect("generate");
    assert!(data.exists());

    commands::stats(&flags(&[("db", data_s)])).expect("stats");

    commands::index(&flags(&[
        ("db", data_s),
        ("out", index_s),
        ("width", "128"),
    ]))
    .expect("index");
    assert!(index.exists());

    // Mining with the persisted index must succeed for every scheme name.
    for scheme in ["sfs", "sfp", "dfs", "dfp", "apriori", "fpgrowth"] {
        commands::mine(&flags(&[
            ("db", data_s),
            ("index", index_s),
            ("width", "128"),
            ("min-support", "5%"),
            ("scheme", scheme),
            ("top", "3"),
        ]))
        .unwrap_or_else(|e| panic!("mine --scheme {scheme}: {e}"));
    }

    commands::count(&flags(&[
        ("db", data_s),
        ("index", index_s),
        ("width", "128"),
        ("items", "1 2"),
    ]))
    .expect("count");

    commands::count(&flags(&[
        ("db", data_s),
        ("index", index_s),
        ("width", "128"),
        ("items", "1 2"),
        ("mod", "7"),
    ]))
    .expect("constrained count");
}

#[test]
fn stale_index_is_rejected() {
    let data = temp("stale.txt");
    let index = temp("stale.bbs");
    let _cleanup = Cleanup(vec![data.clone(), index.clone()]);
    let data_s = data.to_str().expect("utf8 path");
    let index_s = index.to_str().expect("utf8 path");

    commands::generate(&flags(&[
        ("out", data_s),
        ("transactions", "50"),
        ("items", "20"),
        ("pattern-pool", "5"),
    ]))
    .expect("generate");
    commands::index(&flags(&[("db", data_s), ("out", index_s), ("width", "64")]))
        .expect("index");

    // Regenerate the data with a different size: the index no longer fits.
    commands::generate(&flags(&[
        ("out", data_s),
        ("transactions", "60"),
        ("items", "20"),
        ("pattern-pool", "5"),
    ]))
    .expect("regenerate");
    let err = commands::mine(&flags(&[
        ("db", data_s),
        ("index", index_s),
        ("min-support", "10%"),
    ]))
    .expect_err("stale index must be rejected");
    assert!(err.to_string().contains("rebuild"), "{err}");
}

#[test]
fn missing_flags_and_bad_values_error_cleanly() {
    assert!(commands::generate(&flags(&[("out", "/tmp/x")])).is_err());
    assert!(commands::stats(&flags(&[("db", "/nonexistent/definitely.txt")])).is_err());
    let data = temp("badvals.txt");
    let _cleanup = Cleanup(vec![data.clone()]);
    let data_s = data.to_str().expect("utf8 path");
    commands::generate(&flags(&[
        ("out", data_s),
        ("transactions", "30"),
        ("items", "10"),
        ("pattern-pool", "5"),
    ]))
    .expect("generate");
    assert!(commands::mine(&flags(&[
        ("db", data_s),
        ("min-support", "200%"),
    ]))
    .is_err());
    assert!(commands::mine(&flags(&[
        ("db", data_s),
        ("min-support", "5%"),
        ("scheme", "quantum"),
    ]))
    .is_err());
    assert!(commands::count(&flags(&[("db", data_s), ("items", "one two")])).is_err());
}
