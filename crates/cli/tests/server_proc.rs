//! Subprocess test of `bbs serve`: spawn the real binary, ingest through
//! the wire protocol, kill the process mid-ingest (SIGKILL — no chance
//! to flush), and verify that `bbs fsck` passes and a reopened
//! deployment serves a whole-batch, prefix-consistent state.

use bbs_server::{Client, ClientError};
use bbs_storage::DiskDeployment;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_proc_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

const BATCH: u64 = 8;

fn spawn_server(base: &std::path::Path) -> (std::process::Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args([
            "serve",
            "--base",
            base.to_str().expect("utf8"),
            "--tcp",
            "127.0.0.1:0",
            "--width",
            "64",
            "--cache-pages",
            "128",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bbs serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening tcp ") {
            break rest.trim().to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn fsck(base: &std::path::Path) -> bool {
    Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(["fsck", "--base", base.to_str().expect("utf8")])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run bbs fsck")
        .success()
}

#[test]
fn kill_mid_ingest_recovers_to_a_consistent_prefix() {
    let base = temp("kill");
    let _g = Cleanup(base.clone());
    let (mut child, addr) = spawn_server(&base);

    // Hammer inserts from a writer thread; every transaction carries
    // item 1 and batches have a fixed size, so any committed prefix must
    // satisfy rows % BATCH == 0 and count({1}) == rows.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = match Client::connect_tcp(&addr) {
                Ok(c) => c,
                Err(_) => return 0u64,
            };
            client.set_timeout(Some(Duration::from_secs(5))).ok();
            let mut confirmed = 0u64;
            let mut next = 0u64;
            while !stop.load(Ordering::Acquire) {
                let txns: Vec<(u64, Vec<u32>)> = (next..next + BATCH)
                    .map(|i| (i, vec![1, 2 + (i % 4) as u32]))
                    .collect();
                match client.insert(&txns) {
                    Ok(reply) => {
                        confirmed = reply.first_row + reply.appended;
                        next += BATCH;
                    }
                    Err(ClientError::Overloaded) => continue,
                    // The kill lands mid-call eventually; that's the point.
                    Err(_) => break,
                }
            }
            confirmed
        })
    };

    // Let some batches land, then SIGKILL the server mid-stream.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut probe = Client::connect_tcp(&addr).expect("probe connect");
        let rows = probe.count(&[1]).expect("probe count").rows;
        if rows >= 5 * BATCH {
            break;
        }
        assert!(Instant::now() < deadline, "ingest made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill server");
    child.wait().expect("reap server");
    stop.store(true, Ordering::Release);
    let confirmed = writer.join().expect("writer");
    assert!(confirmed >= 5 * BATCH, "some batches must have been confirmed");

    // The committed state must verify clean before anyone recovers it...
    assert!(fsck(&base), "fsck must pass on the killed deployment");

    // ...and a reopen recovers to a whole-batch prefix covering at least
    // every confirmed receipt.
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let mut dep = DiskDeployment::open(&base, 64, hasher, 128).expect("recovering reopen");
    let rows = dep.db.len();
    assert_eq!(rows % BATCH, 0, "no torn batch survives recovery");
    assert!(rows >= confirmed, "confirmed receipts are durable");
    let support = dep
        .index
        .count_itemset(&bbs_tdb::Itemset::from_values(&[1]))
        .expect("count");
    assert_eq!(support, rows, "count({{1}}) equals recovered rows");
    dep.flush().expect("flush");
    drop(dep);
    assert!(fsck(&base), "fsck must pass after recovery too");

    // A fresh server over the recovered files serves it all again.
    let (mut child, addr) = spawn_server(&base);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let reply = client.count(&[1]).expect("count");
    assert_eq!(reply.support, rows);
    client.shutdown_server().expect("shutdown");
    child.wait().expect("clean exit");
}

/// The exactly-once window survives a process crash: a client that
/// committed a batch, lost the server to SIGKILL, and retries the same
/// request ID against a *restarted* process gets the original receipt —
/// not a second append.
#[test]
fn retry_with_same_request_id_across_kill_and_restart_never_duplicates() {
    let base = temp("retrydup");
    let _g = Cleanup(base.clone());
    let (mut child, addr) = spawn_server(&base);

    let txns: Vec<(u64, Vec<u32>)> = (0..BATCH).map(|i| (i, vec![1, 7])).collect();
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let first = client.insert_with_id(777, &txns).expect("insert");
    assert_eq!(
        (first.first_row, first.appended, first.deduped),
        (0, BATCH, false)
    );

    // The server dies without warning; as far as a client with a lost
    // reply knows, the batch may or may not have committed.
    child.kill().expect("kill server");
    child.wait().expect("reap server");
    assert!(fsck(&base), "fsck after the kill");

    // A new process over the same files answers the retry from the
    // recovered dedup window.
    let (mut child, addr) = spawn_server(&base);
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let retried = client.insert_with_id(777, &txns).expect("retry");
    assert!(retried.deduped, "retry must be answered from the window");
    assert_eq!(
        (retried.first_row, retried.appended),
        (first.first_row, first.appended),
        "the receipt is the original one"
    );
    let count = client.count(&[1]).expect("count");
    assert_eq!(
        (count.support, count.rows),
        (BATCH, BATCH),
        "the batch exists exactly once"
    );

    // A *different* request ID is new work, not a window hit.
    let more: Vec<(u64, Vec<u32>)> = (BATCH..2 * BATCH).map(|i| (i, vec![1, 8])).collect();
    let fresh = client.insert_with_id(778, &more).expect("fresh insert");
    assert_eq!(
        (fresh.first_row, fresh.appended, fresh.deduped),
        (BATCH, BATCH, false)
    );

    client.shutdown_server().expect("shutdown");
    let status = child.wait().expect("wait");
    assert!(status.success());
    assert!(fsck(&base), "fsck after the whole dance");
}

/// SIGTERM (and SIGINT) are graceful: the server flushes its commit
/// queue, syncs the files, and exits 0 — indistinguishable on disk from
/// a client-requested shutdown.
#[test]
fn sigterm_drains_gracefully_and_exits_zero() {
    let base = temp("sigterm");
    let _g = Cleanup(base.clone());
    let (mut child, addr) = spawn_server(&base);

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let txns: Vec<(u64, Vec<u32>)> = (0..24).map(|i| (i, vec![5, 6 + (i % 2) as u32])).collect();
    let reply = client.insert(&txns).expect("insert");
    assert_eq!(reply.appended, 24);

    let delivered = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill")
        .success();
    assert!(delivered, "SIGTERM delivered");
    let status = child.wait().expect("wait");
    assert!(status.success(), "SIGTERM drain exits zero, got {status:?}");

    assert!(fsck(&base), "fsck passes after SIGTERM drain");
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let dep = DiskDeployment::open(&base, 64, hasher, 128).expect("reopen");
    assert_eq!(dep.db.len(), 24, "every committed row survives the drain");
    let support = dep
        .index
        .count_itemset(&bbs_tdb::Itemset::from_values(&[5]))
        .expect("count");
    assert_eq!(support, 24);
}

#[test]
fn graceful_shutdown_exits_zero_and_preserves_data() {
    let base = temp("graceful");
    let _g = Cleanup(base.clone());
    let (mut child, addr) = spawn_server(&base);

    let mut client = Client::connect_tcp(&addr).expect("connect");
    let txns: Vec<(u64, Vec<u32>)> = (0..30).map(|i| (i, vec![9, 10 + (i % 3) as u32])).collect();
    let reply = client.insert(&txns).expect("insert");
    assert_eq!(reply.appended, 30);
    client.shutdown_server().expect("shutdown");
    let status = child.wait().expect("wait");
    assert!(status.success(), "graceful drain exits zero");

    assert!(fsck(&base), "fsck passes after graceful shutdown");
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let dep = DiskDeployment::open(&base, 64, hasher, 128).expect("reopen");
    assert_eq!(dep.db.len(), 30);
    let support = dep
        .index
        .count_itemset(&bbs_tdb::Itemset::from_values(&[9]))
        .expect("count");
    assert_eq!(support, 30);
}
