//! Failover chaos: a real primary process streaming to a real follower
//! process, SIGKILLed mid-ingest under concurrent retrying writers, the
//! survivor promoted through `bbs client promote`.
//!
//! The invariants at the end:
//!
//! * the promoted node's files verify clean (`fsck`);
//! * every batch a writer ever sent exists on the survivor **exactly
//!   once** — clients re-send every batch with its original request ID
//!   after failover, so a batch that replicated before the kill is a
//!   dedup hit answered with its *original* receipt, and one that did
//!   not is appended fresh (no acknowledged row is lost, none doubles);
//! * a live mine on the promoted node equals a serial offline re-mine
//!   of the files it leaves behind.
//!
//! The schedule is seeded; set `CHAOS_SEED=<u64>` to reproduce a run.

use bbs_server::{Client, ClientError, InsertReply, RetryClient, RetryPolicy, ServerAddr};
use bbs_storage::{mine_in_place, DiskDeployment};
use bbs_tdb::{Itemset, SupportThreshold};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_SEED: u64 = 2964703749;
const WRITERS: u64 = 3;
const BATCH: u64 = 8;
const MAX_BATCHES_PER_WRITER: u64 = 200;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_failover_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn spawn_server(base: &std::path::Path, extra: &[&str]) -> (std::process::Child, String) {
    let mut args = vec![
        "serve",
        "--base",
        base.to_str().expect("utf8"),
        "--tcp",
        "127.0.0.1:0",
        "--width",
        "64",
        "--cache-pages",
        "128",
        "--commit-window-ms",
        "0",
    ];
    args.extend_from_slice(extra);
    let mut child = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bbs serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening tcp ") {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn bbs_cmd(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(args)
        .stderr(Stdio::null())
        .output()
        .expect("run bbs");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// One batch a writer sent: its request ID, payload, and — when the old
/// primary confirmed it before dying — the receipt it acknowledged.
struct SentBatch {
    req_id: u64,
    txns: Vec<(u64, Vec<u32>)>,
    acked: Option<InsertReply>,
}

fn batch_txns(writer: u64, batch: u64) -> Vec<(u64, Vec<u32>)> {
    let start = (writer * MAX_BATCHES_PER_WRITER + batch) * BATCH;
    (start..start + BATCH)
        .map(|i| (i, vec![1, 2 + (i % 5) as u32]))
        .collect()
}

#[test]
fn sigkill_primary_promote_follower_no_acked_row_lost_or_doubled() {
    let seed = seed();
    println!("failover seed: {seed} (override with CHAOS_SEED=<u64>)");
    let pb = temp("primary");
    let fb = temp("follower");
    let (_gp, _gf) = (Cleanup(pb.clone()), Cleanup(fb.clone()));

    let (mut primary, paddr) = spawn_server(&pb, &[]);
    let (mut follower, faddr) = spawn_server(&fb, &["--follow", &paddr, "--poll-ms", "5"]);

    // Retrying writers hammer the primary with request-ID-stamped
    // batches until it dies under them.
    let stop = Arc::new(AtomicBool::new(false));
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let paddr = paddr.clone();
        let stop = Arc::clone(&stop);
        let mut rng = seed ^ (w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        writer_handles.push(std::thread::spawn(move || {
            let mut client = RetryClient::with_policy(
                ServerAddr::Tcp(paddr),
                RetryPolicy {
                    attempts: 3,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(50),
                },
            );
            client.set_timeout(Some(Duration::from_secs(5)));
            let mut sent: Vec<SentBatch> = Vec::new();
            for b in 0..MAX_BATCHES_PER_WRITER {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let req_id = (w * MAX_BATCHES_PER_WRITER + b) + 1;
                let txns = batch_txns(w, b);
                let acked = client.insert_with_id(req_id, &txns).ok();
                let died = acked.is_none();
                sent.push(SentBatch {
                    req_id,
                    txns,
                    acked,
                });
                if died {
                    // The primary is gone; this in-flight batch is the
                    // one the failover protocol must not lose.
                    break;
                }
                // Seeded jitter so the writers interleave differently
                // from run to run (but identically per seed).
                std::thread::sleep(Duration::from_micros(splitmix64(&mut rng) % 3000));
            }
            sent
        }));
    }

    // Let ingest flow until the follower has demonstrably replicated at
    // least one acknowledged batch, then SIGKILL the primary mid-stream.
    {
        let mut fc = Client::connect_tcp(&faddr).expect("connect follower");
        fc.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let rows = fc.count(&[1]).expect("follower count").rows;
            if rows >= 4 * BATCH {
                break;
            }
            assert!(Instant::now() < deadline, "replication made no progress");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    primary.kill().expect("SIGKILL primary");
    primary.wait().expect("reap primary");
    stop.store(true, Ordering::Release);

    let mut sent: Vec<SentBatch> = Vec::new();
    for h in writer_handles {
        sent.extend(h.join().expect("writer"));
    }
    let acked_batches = sent.iter().filter(|s| s.acked.is_some()).count();
    assert!(acked_batches >= 4, "enough batches were acknowledged");

    // Promote the survivor through the CLI.
    let (ok, out) = bbs_cmd(&["client", "promote", "--tcp", &faddr]);
    assert!(ok, "bbs client promote failed");
    assert!(out.contains("promoted to primary"), "unexpected: {out}");

    // Failover protocol: re-send EVERY batch with its original request
    // ID.  Replicated batches are dedup hits with their original
    // receipts; unreplicated ones (including the in-flight batch whose
    // reply the kill ate) append fresh.  Either way: exactly once.
    let mut client = Client::connect_tcp(&faddr).expect("connect promoted");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut dedup_hits = 0usize;
    for batch in &sent {
        let reply = loop {
            match client.insert_with_id(batch.req_id, &batch.txns) {
                Ok(r) => break r,
                Err(ClientError::Overloaded) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("re-send failed: {e}"),
            }
        };
        assert_eq!(reply.appended, BATCH);
        if reply.deduped {
            dedup_hits += 1;
            if let Some(original) = &batch.acked {
                assert_eq!(
                    (reply.first_row, reply.appended),
                    (original.first_row, original.appended),
                    "a replicated batch answers with its original receipt"
                );
            }
        }
    }
    assert!(
        dedup_hits >= 4,
        "the batches that replicated before the kill must dedup (got {dedup_hits})"
    );

    // Exactly once: the survivor holds every sent TID once, nothing else.
    let total_rows = (sent.len() as u64) * BATCH;
    let final_count = client.count(&[1]).expect("final count");
    assert_eq!(
        (final_count.support, final_count.rows),
        (total_rows, total_rows),
        "every acknowledged (and re-sent) row exactly once"
    );

    // Live mine on the promoted node...
    let threshold = SupportThreshold::Count(total_rows / 5);
    let mined = client
        .mine(bbs_core::Scheme::Dfp, threshold, 0)
        .expect("live mine");
    assert_eq!(mined.rows, total_rows);
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"role\":\"primary\""));
    assert!(stats.contains("\"promotions\":1"));

    client.shutdown_server().expect("shutdown");
    let status = follower.wait().expect("wait follower");
    assert!(status.success(), "promoted node drains cleanly");

    // ...must match a serial offline re-mine of what it left on disk,
    // and those files must verify clean.
    let (ok, _) = bbs_cmd(&["fsck", "--base", fb.to_str().expect("utf8")]);
    assert!(ok, "fsck must pass on the promoted node's files");

    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let mut dep = DiskDeployment::open(&fb, 64, hasher, 256).expect("reopen");
    assert_eq!(dep.db.len(), total_rows);
    let loaded = dep.db.load().expect("load heap");
    let mut tids: Vec<u64> = loaded.transactions().iter().map(|t| t.tid.0).collect();
    tids.sort_unstable();
    let mut expected: Vec<u64> = sent
        .iter()
        .flat_map(|s| s.txns.iter().map(|(tid, _)| *tid))
        .collect();
    expected.sort_unstable();
    assert_eq!(tids, expected, "no duplicate and no missing transaction");

    let (offline, _stats) = mine_in_place(&mut dep, bbs_core::Scheme::Dfp, threshold, 1)
        .expect("offline re-mine");
    assert_eq!(
        offline.patterns.len(),
        mined.patterns.len(),
        "live mine and offline re-mine must agree on the pattern count"
    );
    for (items, support, _approx) in &mined.patterns {
        assert_eq!(
            offline.patterns.support(&Itemset::from_values(items)),
            Some(*support),
            "support mismatch for {items:?}"
        );
    }
}
