//! Subprocess tests of the sharded deployment lifecycle: `bbs create
//! --shards N`, `bbs serve` over the shard directory, SIGKILL mid-ingest,
//! `bbs fsck` with one summary line per shard, and recovery invariants —
//! each shard recovers to a prefix of its own residue class, and the
//! exactly-once window answers retries across the restart.

use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_server::{Client, ClientError};
use bbs_shard::{shard_base, route, ShardedDeployment};
use bbs_storage::DiskDeployment;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_shard_proc_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        ShardedDeployment::remove_files(&self.0).ok();
    }
}

const BATCH: u64 = 8;

fn bbs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bbs"))
}

fn create_shards(dir: &std::path::Path, shards: usize) {
    let out = bbs()
        .args([
            "create",
            "--base",
            dir.to_str().expect("utf8"),
            "--shards",
            &shards.to_string(),
            "--width",
            "64",
        ])
        .output()
        .expect("run bbs create");
    assert!(out.status.success(), "create failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("created sharded deployment"), "{stdout}");
}

/// Spawns `bbs serve` over the shard directory and returns the child,
/// the TCP address, and the banner line it printed.
fn spawn_server(dir: &std::path::Path) -> (std::process::Child, String, String) {
    let mut child = bbs()
        .args([
            "serve",
            "--base",
            dir.to_str().expect("utf8"),
            "--tcp",
            "127.0.0.1:0",
            "--cache-pages",
            "128",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bbs serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let banner = loop {
        let line = lines
            .next()
            .expect("server exited before announcing itself")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening tcp ") {
            addr = Some(rest.trim().to_string());
        } else if line.starts_with("serving ") {
            break line;
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr.expect("listening line precedes banner"), banner)
}

/// Runs `bbs fsck` on the shard directory, returning (success, stdout).
fn fsck(dir: &std::path::Path) -> (bool, String) {
    let out = bbs()
        .args(["fsck", "--base", dir.to_str().expect("utf8")])
        .stderr(Stdio::null())
        .output()
        .expect("run bbs fsck");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn sharded_kill_mid_ingest_recovers_each_shard_to_a_residue_prefix() {
    const SHARDS: usize = 4;
    let dir = temp("kill");
    let _g = Cleanup(dir.clone());
    create_shards(&dir, SHARDS);
    let (mut child, addr, banner) = spawn_server(&dir);
    assert!(banner.contains("4 shard(s)"), "{banner}");

    // Sequential TIDs in fixed batches: every batch deals exactly
    // BATCH/SHARDS rows to each shard, so a confirmed batch means every
    // shard durably holds its share.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = match Client::connect_tcp(&addr) {
                Ok(c) => c,
                Err(_) => return 0u64,
            };
            client.set_timeout(Some(Duration::from_secs(5))).ok();
            let mut confirmed_batches = 0u64;
            let mut next = 0u64;
            while !stop.load(Ordering::Acquire) {
                let txns: Vec<(u64, Vec<u32>)> = (next..next + BATCH)
                    .map(|i| (i, vec![1, 2 + (i % 4) as u32]))
                    .collect();
                match client.insert(&txns) {
                    Ok(_) => {
                        confirmed_batches += 1;
                        next += BATCH;
                    }
                    Err(ClientError::Overloaded) => continue,
                    // The kill lands mid-call eventually; that's the point.
                    Err(_) => break,
                }
            }
            confirmed_batches
        })
    };

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mut probe = Client::connect_tcp(&addr).expect("probe connect");
        let rows = probe.count(&[1]).expect("probe count").rows;
        if rows >= 5 * BATCH {
            break;
        }
        assert!(Instant::now() < deadline, "ingest made no progress");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill server");
    child.wait().expect("reap server");
    stop.store(true, Ordering::Release);
    let confirmed_batches = writer.join().expect("writer");

    // fsck: parallel verify, one clean line per shard, exit zero.
    let (ok, stdout) = fsck(&dir);
    assert!(ok, "fsck must pass on the killed shard directory:\n{stdout}");
    for shard in 0..SHARDS {
        assert!(
            stdout.contains(&format!("shard {shard:03}: clean")),
            "missing shard {shard} line in:\n{stdout}"
        );
    }

    // Each shard recovered independently — its TIDs must be exactly a
    // prefix of its residue class in insertion order, covering at least
    // every confirmed batch's share.
    let hasher: Arc<dyn ItemHasher> = Arc::new(Md5BloomHasher::new(4));
    for shard in 0..SHARDS {
        let mut dep = DiskDeployment::open(&shard_base(&dir, shard), 64, Arc::clone(&hasher), 128)
            .expect("reopen shard");
        let db = dep.db.load().expect("load shard db");
        let tids: Vec<u64> = db.transactions().iter().map(|t| t.tid.0).collect();
        let want: Vec<u64> = (0..tids.len() as u64)
            .map(|k| shard as u64 + k * SHARDS as u64)
            .collect();
        assert_eq!(tids, want, "shard {shard} is not a residue-class prefix");
        assert!(
            tids.len() as u64 >= confirmed_batches * (BATCH / SHARDS as u64),
            "shard {shard} lost confirmed rows"
        );
        assert!(tids.iter().all(|t| route(*t, SHARDS) == shard));
        dep.flush().expect("flush shard");
    }

    // A fresh server over the recovered shards serves the union again.
    let (mut child, addr, _) = spawn_server(&dir);
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let reply = client.count(&[1]).expect("count");
    assert_eq!(reply.support, reply.rows, "every row carries item 1");
    let stats = client.stats().expect("stats");
    assert!(stats.contains(&format!("\"shards\":{SHARDS}")), "{stats}");
    client.shutdown_server().expect("shutdown");
    assert!(child.wait().expect("wait").success());
    let (ok, _) = fsck(&dir);
    assert!(ok, "fsck after the graceful shutdown");
}

#[test]
fn sharded_retry_across_kill_and_restart_dedups_per_shard() {
    const SHARDS: usize = 3;
    let dir = temp("retrydup");
    let _g = Cleanup(dir.clone());
    create_shards(&dir, SHARDS);
    let (mut child, addr, _) = spawn_server(&dir);

    let txns: Vec<(u64, Vec<u32>)> = (0..9).map(|i| (i, vec![1, 7])).collect();
    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let first = client.insert_with_id(777, &txns).expect("insert");
    assert_eq!((first.appended, first.deduped), (9, false));

    // The router dies without warning; every shard keeps its own
    // exactly-once window on disk.
    child.kill().expect("kill server");
    child.wait().expect("reap server");
    let (ok, _) = fsck(&dir);
    assert!(ok, "fsck after the kill");

    // A new process answers the retried request ID from the recovered
    // per-shard windows: same receipt, nothing appended twice.
    let (mut child, addr, _) = spawn_server(&dir);
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    client.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let retried = client.insert_with_id(777, &txns).expect("retry");
    assert!(retried.deduped, "retry must be answered from the windows");
    assert_eq!(retried.appended, first.appended);
    let count = client.count(&[1]).expect("count");
    assert_eq!((count.support, count.rows), (9, 9), "the batch exists exactly once");

    // A different request ID is new work on every shard.
    let more: Vec<(u64, Vec<u32>)> = (9..18).map(|i| (i, vec![1, 8])).collect();
    let fresh = client.insert_with_id(778, &more).expect("fresh insert");
    assert_eq!((fresh.appended, fresh.deduped), (9, false));

    client.shutdown_server().expect("shutdown");
    assert!(child.wait().expect("wait").success());
    let (ok, stdout) = fsck(&dir);
    assert!(ok, "fsck after the whole dance:\n{stdout}");
}
