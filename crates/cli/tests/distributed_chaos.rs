//! Distributed chaos: a coordinator process routing to two real shard
//! server processes — shard 0 with a live follower process — while
//! seeded retrying writers hammer it, then SIGKILL shard 0's primary
//! mid-ingest.  The coordinator must fail that shard over to its
//! follower and keep answering.
//!
//! The invariants at the end:
//!
//! * every batch re-sent with its original request ID answers exactly
//!   once — batches that replicated before the kill are dedup hits with
//!   their *original* receipts, unreplicated ones append fresh;
//! * both surviving shards' files verify clean (`fsck`);
//! * the union of the shard files holds the exact sent TID set, each
//!   exactly once, partitioned by TID residue;
//! * a distributed mine through the coordinator equals a serial offline
//!   re-mine of the merged shard files.
//!
//! The schedule is seeded; set `CHAOS_SEED=<u64>` to reproduce a run.

use bbs_server::{Client, ClientError, InsertReply, RetryClient, RetryPolicy, ServerAddr};
use bbs_storage::{mine_in_place, DiskDeployment};
use bbs_tdb::{Itemset, SupportThreshold, Transaction};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_SEED: u64 = 2964703749;
const WRITERS: u64 = 3;
const BATCH: u64 = 8;
const MAX_BATCHES_PER_WRITER: u64 = 200;
const SHARDS: u64 = 2;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_dchaos_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

struct CleanupFile(PathBuf);
impl Drop for CleanupFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn spawn_bbs(args: &[&str]) -> (std::process::Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn bbs");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .expect("read stdout");
        if let Some(rest) = line.strip_prefix("listening tcp ") {
            break rest.trim().to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn spawn_shard(base: &std::path::Path, extra: &[&str]) -> (std::process::Child, String) {
    let mut args = vec![
        "serve",
        "--base",
        base.to_str().expect("utf8"),
        "--tcp",
        "127.0.0.1:0",
        "--width",
        "64",
        "--cache-pages",
        "128",
        "--commit-window-ms",
        "0",
    ];
    args.extend_from_slice(extra);
    spawn_bbs(&args)
}

fn bbs_cmd(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bbs"))
        .args(args)
        .stderr(Stdio::null())
        .output()
        .expect("run bbs");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// One batch a writer sent through the coordinator: its request ID,
/// payload, and the merged receipt it acknowledged (when it did).
struct SentBatch {
    req_id: u64,
    txns: Vec<(u64, Vec<u32>)>,
    acked: Option<InsertReply>,
}

fn batch_txns(writer: u64, batch: u64) -> Vec<(u64, Vec<u32>)> {
    let start = (writer * MAX_BATCHES_PER_WRITER + batch) * BATCH;
    (start..start + BATCH)
        .map(|i| (i, vec![1, 2 + (i % 5) as u32]))
        .collect()
}

#[test]
fn sigkill_shard_primary_coordinator_fails_over_exact_tid_set_survives() {
    let seed = seed();
    println!("distributed chaos seed: {seed} (override with CHAOS_SEED=<u64>)");
    let p0 = temp("s0_primary");
    let f0 = temp("s0_follower");
    let s1 = temp("s1");
    let _guards = (Cleanup(p0.clone()), Cleanup(f0.clone()), Cleanup(s1.clone()));

    // Shard 0: primary + replicating follower.  Shard 1: a single server.
    let (mut primary0, a_p0) = spawn_shard(&p0, &[]);
    let (mut follower0, a_f0) = spawn_shard(&f0, &["--follow", &a_p0, "--poll-ms", "5"]);
    let (mut shard1, a_s1) = spawn_shard(&s1, &[]);

    // The topology the coordinator serves, checked then connected.
    let topo_path = temp("topology.json").with_extension("json");
    let _gt = CleanupFile(topo_path.clone());
    std::fs::write(
        &topo_path,
        format!(
            r#"{{
  "version": 1,
  "shards": 2,
  "width": 64,
  "hasher": "md5/4",
  "nodes": [
    {{ "id": 0, "primary": "{a_p0}", "follower": "{a_f0}" }},
    {{ "id": 1, "primary": "{a_s1}" }}
  ]
}}
"#
        ),
    )
    .expect("write topology");
    let topo_str = topo_path.to_str().expect("utf8");
    let (ok, out) = bbs_cmd(&["topology", "check", "--file", topo_str, "--connect"]);
    assert!(ok, "topology check --connect failed: {out}");
    assert!(out.contains("all shards agree"), "{out}");

    let (mut coordinator, a_coord) = spawn_bbs(&[
        "serve",
        "--coordinator",
        topo_str,
        "--tcp",
        "127.0.0.1:0",
        "--retries",
        "3",
        "--retry-base-ms",
        "5",
        "--shard-timeout-ms",
        "5000",
    ]);

    // Seeded retrying writers hammer the coordinator with
    // request-ID-stamped batches until the kill.
    let stop = Arc::new(AtomicBool::new(false));
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let addr = a_coord.clone();
        let stop = Arc::clone(&stop);
        let mut rng = seed ^ (w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        writer_handles.push(std::thread::spawn(move || {
            let mut client = RetryClient::with_policy(
                ServerAddr::Tcp(addr),
                RetryPolicy {
                    attempts: 3,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(50),
                },
            );
            client.set_timeout(Some(Duration::from_secs(10)));
            let mut sent: Vec<SentBatch> = Vec::new();
            for b in 0..MAX_BATCHES_PER_WRITER {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let req_id = (w * MAX_BATCHES_PER_WRITER + b) + 1;
                let txns = batch_txns(w, b);
                let acked = client.insert_with_id(req_id, &txns).ok();
                let died = acked.is_none();
                sent.push(SentBatch { req_id, txns, acked });
                if died {
                    // The kill window: this in-flight batch is the one
                    // the failover protocol must not lose or double.
                    break;
                }
                std::thread::sleep(Duration::from_micros(splitmix64(&mut rng) % 3000));
            }
            sent
        }));
    }

    // Let ingest flow until shard 0's follower has demonstrably
    // replicated a few acknowledged batches, then SIGKILL the primary.
    {
        let mut fc = Client::connect_tcp(&a_f0).expect("connect follower");
        fc.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let rows = fc.count(&[1]).expect("follower count").rows;
            if rows >= 2 * BATCH {
                break;
            }
            assert!(Instant::now() < deadline, "replication made no progress");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    primary0.kill().expect("SIGKILL shard 0 primary");
    primary0.wait().expect("reap primary");
    stop.store(true, Ordering::Release);

    let mut sent: Vec<SentBatch> = Vec::new();
    for h in writer_handles {
        sent.extend(h.join().expect("writer"));
    }
    let acked_batches = sent.iter().filter(|s| s.acked.is_some()).count();
    assert!(acked_batches >= 2, "enough batches were acknowledged");

    // Failover protocol: re-send EVERY batch through the coordinator
    // with its original request ID.  The first insert that touches the
    // dead primary triggers the failover (promote the follower,
    // re-point shard 0's handle); a batch that replicated before the
    // kill dedups on every shard and answers with its original merged
    // receipt, an unreplicated one appends fresh.  Either way: exactly
    // once, end-to-end through the coordinator.
    let mut client = Client::connect_tcp(&a_coord).expect("connect coordinator");
    client.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut dedup_hits = 0usize;
    for batch in &sent {
        let reply = loop {
            match client.insert_with_id(batch.req_id, &batch.txns) {
                Ok(r) => break r,
                Err(ClientError::Overloaded) => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("re-send failed: {e}"),
            }
        };
        assert_eq!(reply.appended, BATCH);
        if reply.deduped {
            dedup_hits += 1;
            if let Some(original) = &batch.acked {
                assert_eq!(
                    (reply.first_row, reply.appended),
                    (original.first_row, original.appended),
                    "a replicated batch answers with its original merged receipt"
                );
            }
        }
    }
    assert!(
        dedup_hits >= 2,
        "the batches that replicated before the kill must dedup (got {dedup_hits})"
    );

    // Exactly once through the scatter: every sent TID exactly once.
    let total_rows = (sent.len() as u64) * BATCH;
    let final_count = client.count(&[1]).expect("final count");
    assert_eq!(
        (final_count.support, final_count.rows),
        (total_rows, total_rows),
        "every acknowledged (and re-sent) row exactly once"
    );

    // The failover shows in the coordinator's fault counters.
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"coordinator\":true"), "{stats}");
    assert!(stats.contains("\"failovers\":[1,0]"), "{stats}");

    // Distributed mine through the coordinator (pull every shard's
    // pinned rows, rebuild, merge supports globally)...
    let threshold = SupportThreshold::Count(total_rows / 5);
    let mined = client
        .mine(bbs_core::Scheme::Dfp, threshold, 0)
        .expect("distributed mine");
    assert_eq!(mined.rows, total_rows);

    // Drain the coordinator, then the surviving shard servers, so their
    // files are final before the offline pass.
    client.shutdown_server().expect("shutdown coordinator");
    let status = coordinator.wait().expect("wait coordinator");
    assert!(status.success(), "coordinator drains cleanly");
    for addr in [&a_f0, &a_s1] {
        let mut c = Client::connect_tcp(addr).expect("connect shard");
        c.shutdown_server().expect("shutdown shard");
    }
    assert!(follower0.wait().expect("wait follower").success());
    assert!(shard1.wait().expect("wait shard 1").success());

    // Both surviving shards' files verify clean.
    for base in [&f0, &s1] {
        let (ok, _) = bbs_cmd(&["fsck", "--base", base.to_str().expect("utf8")]);
        assert!(ok, "fsck must pass on {}", base.display());
    }

    // The union of the shard files is the exact sent TID set, each
    // exactly once, partitioned by TID residue.
    let hasher = || -> Arc<dyn bbs_hash::ItemHasher> { Arc::new(bbs_hash::Md5BloomHasher::new(4)) };
    let mut all_txns: Vec<Transaction> = Vec::new();
    for (shard, base) in [(0u64, &f0), (1, &s1)] {
        let mut dep = DiskDeployment::open(base, 64, hasher(), 256).expect("reopen shard");
        let loaded = dep.db.load().expect("load heap");
        for txn in loaded.transactions() {
            assert_eq!(txn.tid.0 % SHARDS, shard, "TID routed to the wrong shard");
            all_txns.push(txn.clone());
        }
    }
    let mut tids: Vec<u64> = all_txns.iter().map(|t| t.tid.0).collect();
    tids.sort_unstable();
    let mut expected: Vec<u64> = sent
        .iter()
        .flat_map(|s| s.txns.iter().map(|(tid, _)| *tid))
        .collect();
    expected.sort_unstable();
    assert_eq!(tids, expected, "no duplicate and no missing transaction");

    // ...must match a serial offline re-mine of the merged shard files.
    let mb = temp("merged");
    let _gm = Cleanup(mb.clone());
    let mut merged = DiskDeployment::open(&mb, 64, hasher(), 256).expect("open merged");
    for txn in &all_txns {
        merged.append(txn).expect("append");
    }
    merged.flush().expect("flush merged");
    let (offline, _stats) =
        mine_in_place(&mut merged, bbs_core::Scheme::Dfp, threshold, 1).expect("offline re-mine");
    assert_eq!(
        offline.patterns.len(),
        mined.patterns.len(),
        "distributed mine and offline re-mine must agree on the pattern count"
    );
    for (items, support, _approx) in &mined.patterns {
        assert_eq!(
            offline.patterns.support(&Itemset::from_values(items)),
            Some(*support),
            "support mismatch for {items:?}"
        );
    }
}
