//! The `bbs serve` and `bbs client` subcommands: the daemon side and the
//! wire-protocol side of the deployment server.

use crate::args::{parse_threshold, Flags};
use crate::commands::parse_threads;
use bbs_core::Scheme;
use bbs_remote::{CoordinatorEngine, CoordinatorOptions, RemoteOptions, Topology};
use bbs_server::{
    Bind, Client, Engine, RequestHandler, RetryClient, RetryPolicy, Role, ServerAddr,
    ServerConfig, ServerHandle, ShardedEngine,
};
use bbs_tdb::read_transactions_path;
use std::error::Error;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

type CmdResult = Result<(), Box<dyn Error>>;

/// `bbs serve` — run the query/ingest daemon over a deployment.
///
/// Prints one `listening <transport> <address>` line per bound listener
/// (tests and scripts parse these to discover a port picked with `:0`),
/// then serves until a client sends `shutdown` or the process receives a
/// signal.  Shutdown is a graceful drain: in-flight requests are
/// answered and every queued ingest batch is committed before exit.
pub fn serve(flags: &Flags) -> CmdResult {
    serve_with_stop(flags, &AtomicBool::new(false))
}

/// [`serve`] with an external stop flag: the binary's signal handler
/// flips it on SIGTERM/SIGINT, turning either into the same graceful
/// drain a client `shutdown` performs (queued batches commit, files
/// sync, exit 0).
pub fn serve_with_stop(flags: &Flags, stop: &AtomicBool) -> CmdResult {
    if let Some(path) = flags.get("coordinator") {
        // `bbs serve --coordinator topology.json`: no local data at all —
        // connect to every shard in the topology and serve the
        // scatter-gather engine behind the same listeners.
        return serve_coordinator(flags, path, stop);
    }
    let base = flags.require("base")?;
    let defaults = ServerConfig::default();
    let follow = flags.get("follow").map(str::to_string);
    let auto_promote_ms: u64 = flags.get_parsed_or("auto-promote-ms", 0u64)?;
    if follow.is_none() && auto_promote_ms != 0 {
        return Err("--auto-promote-ms only makes sense with --follow".into());
    }
    let cfg = ServerConfig {
        width: flags.get_parsed_or("width", 1600usize)?,
        cache_pages: flags.get_parsed_or("cache-pages", 4096usize)?,
        queue_capacity: flags.get_parsed_or("queue", 256usize)?,
        batch_max: flags.get_parsed_or("batch-max", 4096usize)?,
        mine_threads: flags.get_parsed_or("threads", 0usize)?,
        insert_timeout: Duration::from_millis(flags.get_parsed_or("insert-timeout-ms", 30_000u64)?),
        commit_window: Duration::from_millis(flags.get_parsed_or("commit-window-ms", 50u64)?),
        dedup_window: flags.get_parsed_or("dedup-window", ServerConfig::default().dedup_window)?,
        follow,
        poll_interval: Duration::from_millis(flags.get_parsed_or("poll-ms", 50u64)?),
        auto_promote: (auto_promote_ms != 0).then(|| Duration::from_millis(auto_promote_ms)),
        maintain_interval: {
            let ms: u64 = flags.get_parsed_or("maintain-ms", 0u64)?;
            (ms != 0).then(|| Duration::from_millis(ms))
        },
        fpr_hi: flags.get_parsed_or("fpr-hi", defaults.fpr_hi)?,
        fpr_lo: flags.get_parsed_or("fpr-lo", defaults.fpr_lo)?,
        fpr_samples: flags.get_parsed_or("fpr-samples", defaults.fpr_samples)?,
        dead_fraction_hi: flags.get_parsed_or("dead-fraction-hi", defaults.dead_fraction_hi)?,
        min_width: flags.get_parsed_or("min-width", defaults.min_width)?,
    };
    let bind = Bind {
        tcp: flags.get("tcp").map(str::to_string),
        unix: flags.get("unix").map(PathBuf::from),
    };
    if bind.tcp.is_none() && bind.unix.is_none() {
        return Err("serve needs a listener: --tcp HOST:PORT and/or --unix PATH".into());
    }

    if bbs_shard::ShardedDeployment::is_sharded(Path::new(base)) {
        // A sharded directory (made by `bbs create --shards N`): serve
        // the shard router — N per-shard commit pipelines behind one
        // listener set.
        let engine = ShardedEngine::open(Path::new(base), cfg)?;
        let rows: u64 = engine.engines().iter().map(|e| e.snapshot().rows()).sum();
        let shards = engine.shard_count();
        let banner = format!("serving {base}/ ({rows} committed rows across {shards} shard(s))");
        let handle = bbs_server::serve(engine, &bind)?;
        return run_until_stopped(handle, &banner, stop);
    }
    let engine = Engine::open(Path::new(base), cfg)?;
    let rows = engine.snapshot().rows();
    let role = engine.role();
    let banner = match role {
        Role::Primary => format!("serving {base}.* ({rows} committed rows, primary)"),
        Role::Follower { primary } => {
            format!("serving {base}.* ({rows} committed rows, following {primary})")
        }
    };
    let handle = bbs_server::serve(engine, &bind)?;
    run_until_stopped(handle, &banner, stop)
}

/// Builds the per-shard connection knobs a coordinator (or a topology
/// connect-check) uses: `--shard-timeout-ms` bounds each remote
/// request, `--retries`/`--retry-base-ms` shape the transient-fault
/// backoff.
fn coordinator_options(flags: &Flags) -> Result<CoordinatorOptions, Box<dyn Error>> {
    let defaults = RetryPolicy::default();
    Ok(CoordinatorOptions {
        remote: RemoteOptions {
            timeout: Duration::from_millis(flags.get_parsed_or("shard-timeout-ms", 5_000u64)?),
            policy: RetryPolicy {
                attempts: flags.get_parsed_or("retries", defaults.attempts)?,
                base: Duration::from_millis(flags.get_parsed_or("retry-base-ms", 10u64)?),
                cap: defaults.cap,
            },
        },
        mine_threads: flags.get_parsed_or("threads", 0usize)?,
    })
}

/// The `--coordinator` branch of `bbs serve`: read the topology, connect
/// (and validate) every shard, and serve the scatter-gather engine.
fn serve_coordinator(flags: &Flags, topology_path: &str, stop: &AtomicBool) -> CmdResult {
    let bind = Bind {
        tcp: flags.get("tcp").map(str::to_string),
        unix: flags.get("unix").map(PathBuf::from),
    };
    if bind.tcp.is_none() && bind.unix.is_none() {
        return Err("serve needs a listener: --tcp HOST:PORT and/or --unix PATH".into());
    }
    let topology = Topology::read(Path::new(topology_path))?;
    let engine = CoordinatorEngine::connect(topology, coordinator_options(flags)?)?;
    let rows: u64 = engine
        .handles()
        .iter()
        .map(|h| h.pin().map(|p| p.rows).unwrap_or(0))
        .sum();
    let shards = engine.topology().shards;
    let banner =
        format!("coordinating {topology_path} ({rows} committed rows across {shards} shard(s))");
    let handle = bbs_server::serve(engine, &bind)?;
    run_until_stopped(handle, &banner, stop)
}

/// `bbs topology ACTION` — inspect a TOPOLOGY manifest.
///
/// `check --file topology.json` parses and validates the manifest
/// (version, shard ordering, address sanity) and prints its summary;
/// with `--connect`, it also dials every shard and verifies each one
/// serves the width and hasher identity the topology pins — the exact
/// admission a coordinator performs at startup.
pub fn topology(flags: &Flags) -> CmdResult {
    let action = flags
        .positional()
        .first()
        .map(String::as_str)
        .ok_or("topology needs an action: check --file topology.json [--connect]")?;
    if action != "check" {
        return Err(format!("unknown topology action {action:?} (expected check)").into());
    }
    let path = flags.require("file")?;
    let topology = Topology::read(Path::new(path))?;
    println!("{topology}");
    if flags.has("connect") {
        let engine = CoordinatorEngine::connect(topology, coordinator_options(flags)?)?;
        for handle in engine.handles() {
            let pin = handle.pin().expect("connect always pins");
            println!(
                "shard {:03} at {}: {} rows at epoch {} (width {}, hasher {})",
                handle.shard(),
                handle.addr(),
                pin.rows,
                pin.epoch,
                pin.width,
                pin.hasher
            );
        }
        println!("all shards agree: width and hasher match the topology");
    }
    Ok(())
}

/// Prints the listener lines and banner, then blocks until a client
/// `shutdown` or the stop flag triggers the graceful drain.
fn run_until_stopped<H: RequestHandler>(
    handle: ServerHandle<H>,
    banner: &str,
    stop: &AtomicBool,
) -> CmdResult {
    if let Some(addr) = handle.tcp_addr() {
        println!("listening tcp {addr}");
    }
    if let Some(path) = handle.unix_path() {
        println!("listening unix {}", path.display());
    }
    println!("{banner}");
    // The line-buffered stdout must reach a parent that spawned us before
    // it tries to connect.
    use std::io::Write;
    std::io::stdout().flush().ok();

    handle.wait_with_stop(stop);
    eprintln!("bbs serve: drained and stopped");
    Ok(())
}

fn server_addr(flags: &Flags) -> Result<ServerAddr, Box<dyn Error>> {
    match (flags.get("tcp"), flags.get("unix")) {
        (Some(addr), None) => Ok(ServerAddr::Tcp(addr.to_string())),
        (None, Some(path)) => Ok(ServerAddr::Unix(PathBuf::from(path))),
        (Some(_), Some(_)) => Err("give --tcp or --unix, not both".into()),
        (None, None) => Err("client needs --tcp HOST:PORT or --unix PATH".into()),
    }
}

fn connect(flags: &Flags) -> Result<Client, Box<dyn Error>> {
    let mut client = match server_addr(flags)? {
        ServerAddr::Tcp(addr) => Client::connect_tcp(addr.as_str())?,
        ServerAddr::Unix(path) => Client::connect_unix(path)?,
    };
    let timeout_ms: u64 = flags.get_parsed_or("timeout-ms", 120_000u64)?;
    if timeout_ms > 0 {
        client.set_timeout(Some(Duration::from_millis(timeout_ms)))?;
    }
    Ok(client)
}

/// Builds the retrying client `bbs client insert` uses: `--retries` is
/// the total attempt budget per batch, `--retry-base-ms` the backoff
/// before the first retry (it doubles per retry, with jitter).
fn retry_client(flags: &Flags) -> Result<RetryClient, Box<dyn Error>> {
    let addr = server_addr(flags)?;
    let defaults = RetryPolicy::default();
    let policy = RetryPolicy {
        attempts: flags.get_parsed_or("retries", defaults.attempts)?,
        base: Duration::from_millis(flags.get_parsed_or("retry-base-ms", 10u64)?),
        cap: defaults.cap,
    };
    let mut client = RetryClient::with_policy(addr, policy);
    let timeout_ms: u64 = flags.get_parsed_or("timeout-ms", 120_000u64)?;
    if timeout_ms > 0 {
        client.set_timeout(Some(Duration::from_millis(timeout_ms)));
    }
    Ok(client)
}

fn parse_items(raw: &str) -> Result<Vec<u32>, Box<dyn Error>> {
    let mut values = Vec::new();
    for tok in raw.split(|c: char| c.is_whitespace() || c == ',') {
        if tok.is_empty() {
            continue;
        }
        values.push(
            tok.parse::<u32>()
                .map_err(|e| format!("bad item {tok:?}: {e}"))?,
        );
    }
    if values.is_empty() {
        return Err("an itemset must name at least one item".into());
    }
    Ok(values)
}

/// `bbs client ACTION` — one request against a running server.
///
/// Actions: `ping`, `count --items "…"` (or repeatable `--itemset "…"`
/// flags, batched over one `count_many` round-trip),
/// `insert --db FILE [--batch N]`,
/// `mine --min-support N|P% [--scheme …] [--threads N]`, `probe --row N`,
/// `stats`, `shutdown`.
pub fn client(flags: &Flags) -> CmdResult {
    let action = flags
        .positional()
        .first()
        .map(String::as_str)
        .ok_or(
            "client needs an action: ping|count|insert|delete|maintain|mine|probe|stats|\
             promote|shutdown",
        )?;
    if action == "insert" {
        // Insert connects through the retrying client (lazily, so a
        // server that is still starting up is retried, not failed).
        return client_insert(flags);
    }
    if action == "delete" {
        // Deletes ride the same retrying client as inserts: one request
        // ID per batch, so a retried delete is answered from the dedup
        // window instead of double-counting tombstones.
        return client_delete(flags);
    }
    let mut client = connect(flags)?;
    match action {
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "count" => {
            let raw_sets = flags.get_all("itemset");
            if raw_sets.is_empty() {
                let items = parse_items(flags.require("items")?)?;
                let reply = client.count(&items)?;
                println!("{}", reply.support);
                eprintln!(
                    "# BBS estimate at epoch {} ({} rows visible)",
                    reply.epoch, reply.rows
                );
            } else {
                // Repeatable --itemset flags ride one count_many frame:
                // every support comes from the same snapshot.
                let sets: Vec<Vec<u32>> = raw_sets
                    .iter()
                    .map(|raw| parse_items(raw))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&[u32]> = sets.iter().map(Vec::as_slice).collect();
                let reply = client.count_many(&refs)?;
                for (items, support) in sets.iter().zip(&reply.supports) {
                    let ids: Vec<String> = items.iter().map(u32::to_string).collect();
                    println!("{support}\t{}", ids.join(" "));
                }
                eprintln!(
                    "# {} BBS estimates at epoch {} ({} rows visible)",
                    reply.supports.len(),
                    reply.epoch,
                    reply.rows
                );
            }
        }
        "mine" => {
            let threshold = parse_threshold(flags.require("min-support")?)?;
            let scheme: Scheme = flags
                .get("scheme")
                .unwrap_or("dfp")
                .parse()
                .map_err(|e: String| e)?;
            let threads = u16::try_from(parse_threads(flags)?).unwrap_or(u16::MAX);
            let reply = client.mine(scheme, threshold, threads)?;
            let top: usize = flags.get_parsed_or("top", usize::MAX)?;
            let mut patterns = reply.patterns;
            patterns.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            for (items, support, approx) in patterns.iter().take(top) {
                let ids: Vec<String> = items.iter().map(u32::to_string).collect();
                let mark = if *approx { " (upper bound)" } else { "" };
                println!("{}\t{}{}", support, ids.join(" "), mark);
            }
            eprintln!(
                "# {} patterns over {} rows at epoch {} (scheme {})",
                patterns.len(),
                reply.rows,
                reply.epoch,
                scheme.name()
            );
        }
        "probe" => {
            let row: u64 = flags.require_parsed("row")?;
            match client.probe(row)? {
                Some((tid, items)) => {
                    let ids: Vec<String> = items.iter().map(u32::to_string).collect();
                    println!("{tid}: {}", ids.join(" "));
                }
                None => {
                    println!("row {row}: past the end");
                }
            }
        }
        "maintain" => {
            let action_code = match flags.get("action").unwrap_or("auto") {
                "probe" | "probe-fpr" => bbs_server::maintain_action::PROBE_FPR,
                "compact" => bbs_server::maintain_action::COMPACT,
                "fold" => bbs_server::maintain_action::FOLD,
                "auto" => bbs_server::maintain_action::AUTO,
                other => {
                    return Err(format!(
                        "unknown maintenance action {other:?} (expected probe|compact|fold|auto)"
                    )
                    .into())
                }
            };
            // The argument is the probe sample count for probe/auto, the
            // target width for compact (0 = keep the current width).
            let arg: u64 = match action_code {
                bbs_server::maintain_action::COMPACT => flags.get_parsed_or("width", 0u64)?,
                _ => flags.get_parsed_or("samples", 0u64)?,
            };
            let reply = client.maintain(action_code, arg)?;
            let taken = match reply.action_taken {
                bbs_server::maintain_action::COMPACT => "compacted",
                bbs_server::maintain_action::FOLD => "folded",
                _ => "probed",
            };
            println!(
                "{taken}: width {}, {} live rows, {} tombstoned, measured FPR {:.6}",
                reply.width, reply.live_rows, reply.deleted_rows, reply.fpr
            );
        }
        "stats" => {
            println!("{}", client.stats()?);
        }
        "promote" => {
            let reply = client.promote()?;
            println!(
                "promoted to primary (epoch {}, {} rows)",
                reply.epoch, reply.rows
            );
        }
        "shutdown" => {
            client.shutdown_server()?;
            println!("server draining");
        }
        other => {
            return Err(format!(
                "unknown client action {other:?} (expected ping|count|insert|delete|maintain|\
                 mine|probe|stats|promote|shutdown)"
            )
            .into())
        }
    }
    Ok(())
}

/// `bbs client insert`: bulk-load a transaction file through the
/// retrying client — backoff on overload, reconnect on transport
/// failures, and one request ID per batch so a retried batch is never
/// appended twice.
fn client_insert(flags: &Flags) -> CmdResult {
    let path = flags.require("db")?;
    let db = read_transactions_path(Path::new(path))?;
    let batch: usize = flags.get_parsed_or("batch", 512usize)?;
    let batch = batch.max(1);
    let mut sent = 0u64;
    let mut first_row = None;
    let mut last_epoch = 0;
    let txns: Vec<(u64, Vec<u32>)> = db
        .transactions()
        .iter()
        .map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect()))
        .collect();
    let mut retrying = retry_client(flags)?;
    for chunk in txns.chunks(batch) {
        let reply = retrying.insert(chunk)?;
        first_row.get_or_insert(reply.first_row);
        last_epoch = reply.epoch;
        sent += reply.appended;
    }
    println!(
        "inserted {sent} transactions (rows {}..{}, epoch {last_epoch})",
        first_row.unwrap_or(0),
        first_row.unwrap_or(0) + sent
    );
    let stats = retrying.stats();
    eprintln!(
        "# {} attempts, {} retries, {} reconnects, {} deduped",
        stats.attempts, stats.retries, stats.reconnects, stats.deduped
    );
    Ok(())
}

/// `bbs client delete`: tombstone the named TIDs through the retrying
/// client.  `--tids "T1 T2 …"` names them inline; `--db FILE` retires
/// every TID a transaction file names (the file's items are ignored);
/// `--tid-file FILE` reads bare whitespace/comma-separated TIDs —
/// `#`-comment lines skipped — the format `generate --weblog --churn`
/// writes to its `<out>.deletes` companion.
fn client_delete(flags: &Flags) -> CmdResult {
    fn parse_tids(raw: &str, into: &mut Vec<u64>) -> Result<(), String> {
        for tok in raw.split(|c: char| c.is_whitespace() || c == ',') {
            if tok.is_empty() {
                continue;
            }
            into.push(tok.parse::<u64>().map_err(|e| format!("bad TID {tok:?}: {e}"))?);
        }
        Ok(())
    }
    let mut tids: Vec<u64> = Vec::new();
    if let Some(raw) = flags.get("tids") {
        parse_tids(raw, &mut tids)?;
    }
    if let Some(path) = flags.get("tid-file") {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("reading TID file {path}: {e}"))?;
        for line in body.lines().filter(|l| !l.trim_start().starts_with('#')) {
            parse_tids(line, &mut tids)?;
        }
    }
    if let Some(path) = flags.get("db") {
        let db = read_transactions_path(Path::new(path))?;
        tids.extend(db.transactions().iter().map(|t| t.tid.0));
    }
    if tids.is_empty() {
        return Err("delete needs --tids \"T1 T2 …\", --tid-file FILE, and/or --db FILE".into());
    }
    let batch: usize = flags.get_parsed_or("batch", 512usize)?;
    let batch = batch.max(1);
    let mut retrying = retry_client(flags)?;
    let mut deleted = 0u64;
    let mut last_epoch = 0;
    for chunk in tids.chunks(batch) {
        let reply = retrying.delete(chunk)?;
        deleted += reply.deleted;
        last_epoch = reply.epoch;
    }
    println!("tombstoned {deleted} row(s) (epoch {last_epoch})");
    let stats = retrying.stats();
    eprintln!(
        "# {} attempts, {} retries, {} reconnects, {} deduped",
        stats.attempts, stats.retries, stats.reconnects, stats.deduped
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_storage::DiskDeployment;

    fn flags(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    fn temp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_srvcmd_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn serve_requires_a_listener() {
        let base = temp("nolisten");
        let err = serve(&flags(&["--base", base.to_str().expect("utf8")]))
            .expect_err("must demand a listener");
        assert!(err.to_string().contains("--tcp"), "{err}");
    }

    #[test]
    fn client_validates_transport_and_action() {
        let err = client(&flags(&["ping"])).expect_err("no transport");
        assert!(err.to_string().contains("--tcp"), "{err}");
        let err = client(&flags(&["ping", "--tcp", "127.0.0.1:1", "--unix", "/tmp/x"]))
            .expect_err("both transports");
        assert!(err.to_string().contains("not both"), "{err}");
        let err = client(&flags(&["--tcp", "127.0.0.1:1"])).expect_err("no action");
        assert!(err.to_string().contains("needs an action"), "{err}");
    }

    #[test]
    fn serve_and_client_roundtrip_in_process() {
        let base = temp("roundtrip");
        let db_path = temp("roundtrip_db.txt");
        std::fs::write(&db_path, "1 2 3\n1 2\n1 4\n1 2 5\n").expect("write db");

        let engine = Engine::open(
            &base,
            ServerConfig {
                width: 64,
                cache_pages: 64,
                ..ServerConfig::default()
            },
        )
        .expect("open engine");
        let handle = bbs_server::serve(
            engine,
            &Bind {
                tcp: Some("127.0.0.1:0".into()),
                unix: None,
            },
        )
        .expect("serve");
        let addr = handle.tcp_addr().expect("addr").to_string();

        client(&flags(&["ping", "--tcp", &addr])).expect("ping");
        client(&flags(&[
            "insert",
            "--tcp",
            &addr,
            "--db",
            db_path.to_str().expect("utf8"),
            "--batch",
            "2",
        ]))
        .expect("insert");
        client(&flags(&["count", "--tcp", &addr, "--items", "1 2"])).expect("count");
        client(&flags(&[
            "count", "--tcp", &addr, "--itemset", "1 2", "--itemset", "1,4", "--itemset", "5",
        ]))
        .expect("count many");
        client(&flags(&[
            "mine",
            "--tcp",
            &addr,
            "--min-support",
            "2",
            "--scheme",
            "dfp",
        ]))
        .expect("mine");
        client(&flags(&["probe", "--tcp", &addr, "--row", "0"])).expect("probe");
        client(&flags(&["stats", "--tcp", &addr])).expect("stats");
        client(&flags(&["shutdown", "--tcp", &addr])).expect("shutdown");
        handle.join();

        DiskDeployment::remove_files(&base).ok();
        std::fs::remove_file(&db_path).ok();
    }
}
