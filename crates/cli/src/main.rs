//! `bbs` — the command-line face of the BBS frequent-pattern index.
//!
//! ```text
//! bbs generate --out data.txt --transactions 10000 --items 10000 [--avg-len 10] [--seed 7]
//! bbs generate --weblog --out log.txt --days 7 --sessions 1000 [--churn 0.1]
//! bbs index    --db data.txt --out data.bbs [--width 1600] [--hash-k 4]
//! bbs mine     --db data.txt --min-support 0.3% [--index data.bbs] [--scheme dfp]
//! bbs count    --db data.txt --items "1 2 3" [--index data.bbs] [--mod 7]
//! bbs stats    --db data.txt
//! bbs stats    --base deploy [--threads 4]
//! ```

use bbs_cli::args::Flags;
use bbs_cli::commands;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

/// Flipped by the signal handler; `bbs serve` polls it and drains.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: one atomic store.
    STOP.store(true, Ordering::Release);
}

extern "C" {
    // signal(2), linked from the platform C library.  Declared locally
    // (the workspace carries no libc crate); the previous handler the
    // kernel returns is opaque to us, hence the untyped word.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Routes SIGINT/SIGTERM into the [`STOP`] flag so `bbs serve` exits
/// through the same graceful drain a client `shutdown` triggers.
fn install_signal_handlers() {
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

const USAGE: &str = "\
bbs — Bit-Sliced Bloom-Filtered Signature File frequent-pattern miner

USAGE:
  bbs generate --out FILE --transactions N --items V
               [--avg-len T] [--pattern-len I] [--seed S]
  bbs generate --weblog --out FILE [--days N] [--sessions N] [--files V]
               [--churn R] [--rotation R] [--hot-fraction R] [--seed S]
               (dynamic web-log workload: day-partitioned growth over a
               rotating hot set; churn writes FILE.deletes, one line of
               expired TIDs per day)
  bbs index    --db FILE --out FILE [--width M] [--hash-k K]
  bbs mine     --db FILE --min-support N|P%
               [--index FILE] [--scheme sfs|sfp|dfs|dfp|apriori|fpgrowth]
               [--width M] [--hash-k K] [--top N]
  bbs count    --db FILE --items \"I1 I2 …\"
               [--index FILE] [--width M] [--hash-k K] [--mod D]
  bbs create   --base DIR --shards N [--width M] [--hash-k K]
               [--cache-pages P]   (sharded deployment: TID-range shards,
               each with its own pager, commit record and dedup window)
  bbs ingest   --base PATH --db FILE [--width M] [--cache-pages N]
  bbs mine-deployment --base PATH --min-support N|P%
               [--scheme sfs|sfp|dfs|dfp] [--width M] [--top N]
               [--threads N]   (in-place workers; 0 or absent = all cores)
               [--in-memory]   (load once and mine memory-resident instead)
  bbs serve    --base PATH [--tcp HOST:PORT] [--unix PATH] [--width M]
               [--cache-pages N] [--queue N] [--batch-max N]
               [--insert-timeout-ms T] [--commit-window-ms T]
               (0 = commit each batch immediately) [--dedup-window N]
               [--follow HOST:PORT] (replicate from that primary)
               [--poll-ms T] [--auto-promote-ms T]
               (follower promotes itself after T ms of primary loss)
  bbs serve    --coordinator topology.json --tcp HOST:PORT | --unix PATH
               [--shard-timeout-ms T] [--retries N] [--retry-base-ms T]
               [--threads N]   (distributed: route inserts and
               scatter-gather reads over the shard servers the
               topology names, with per-shard replica failover)
  bbs topology check --file topology.json [--connect]
               (validate a TOPOLOGY manifest; --connect also dials
               every shard and checks width/hasher agreement)
  bbs client   ping|count|insert|delete|maintain|mine|probe|stats|
               promote|shutdown
               --tcp HOST:PORT | --unix PATH [--timeout-ms T]
               (count: --items \"I1 I2 …\", or repeatable
                --itemset \"I1 I2 …\" to batch many counts in one
                round trip; insert: --db FILE [--batch N]
                [--retries N] [--retry-base-ms T];
                mine: --min-support N|P% [--scheme …] [--threads N];
                probe: --row N; delete: --tids \"T1 T2 …\",
                --tid-file FILE, and/or --db FILE [--batch N]; maintain:
                [--action probe|compact|fold|auto]
                [--samples N] [--width M])
  bbs compact  --base PATH [--width M | --fold] [--hash-k K]
               [--cache-pages N]   (rewrite minus tombstoned rows behind
               an atomic epoch swap; --width M re-hashes to width M,
               --fold halves the width by OR-ing slice halves)
  bbs fsck     --base PATH
  bbs stats    --db FILE
  bbs stats    --base PATH [--min-support N|P%] [--scheme sfs|sfp|dfs|dfp]
               [--threads N]   (cache/pager profile of an in-place run)

`ingest`, `mine-deployment`, `serve` and `fsck` accept a sharded
directory made by `bbs create --shards N`: inserts route by TID to
per-shard commit pipelines, counts and mining scatter-gather.

The transaction file format is one transaction per line: whitespace-
separated item ids, optionally prefixed with an explicit `TID:`.  Lines
starting with '#' are comments.";

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = Flags::parse(argv);
    if flags.has("help") || flags.positional().iter().any(|p| p == "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let result = match command.as_str() {
        "generate" => commands::generate(&flags),
        "index" => commands::index(&flags),
        "create" => commands::create(&flags),
        "mine" => commands::mine(&flags),
        "count" => commands::count(&flags),
        "ingest" => commands::ingest(&flags),
        "mine-deployment" => commands::mine_deployment(&flags),
        "serve" => {
            install_signal_handlers();
            bbs_cli::server_cmd::serve_with_stop(&flags, &STOP)
        }
        "client" => bbs_cli::server_cmd::client(&flags),
        "topology" => bbs_cli::server_cmd::topology(&flags),
        "compact" => commands::compact(&flags),
        "fsck" => commands::fsck(&flags),
        "stats" => commands::stats(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    };

    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bbs {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
