//! The `bbs` subcommand implementations.

use crate::args::{parse_threshold, Flags};
use bbs_apriori::AprioriMiner;
use bbs_core::{persist, AdhocEngine, Bbs, BbsMiner, Scheme};
use bbs_datagen::QuestConfig;
use bbs_fptree::FpGrowthMiner;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_tdb::{
    read_transactions_path, write_transactions_path, FrequentPatternMiner, IoStats, Itemset,
    MineResult, TidModulo, TransactionDb,
};
use std::error::Error;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

type CmdResult = Result<(), Box<dyn Error>>;

fn load_db(flags: &Flags) -> Result<TransactionDb, Box<dyn Error>> {
    let path = flags.require("db")?;
    let db = read_transactions_path(Path::new(path))?;
    if db.is_empty() {
        return Err(format!("{path}: no transactions").into());
    }
    Ok(db)
}

fn hasher(flags: &Flags) -> Result<Arc<dyn ItemHasher>, Box<dyn Error>> {
    let k: usize = flags.get_parsed_or("hash-k", 4usize)?;
    if k == 0 {
        return Err("--hash-k must be at least 1".into());
    }
    Ok(Arc::new(Md5BloomHasher::new(k)))
}

/// Loads a persisted index if `--index` was given, otherwise builds one.
fn load_or_build_index(flags: &Flags, db: &TransactionDb) -> Result<Bbs, Box<dyn Error>> {
    if let Some(path) = flags.get("index") {
        let path = Path::new(path);
        if path.exists() {
            let bbs = persist::load_from_path(path, hasher(flags)?)?;
            if bbs.rows() != db.len() {
                return Err(format!(
                    "index has {} rows but the database has {} transactions; \
                     rebuild with `bbs index`",
                    bbs.rows(),
                    db.len()
                )
                .into());
            }
            return Ok(bbs);
        }
    }
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let mut io = IoStats::new();
    Ok(Bbs::build(width, hasher(flags)?, db, &mut io))
}

/// `bbs generate` — write a synthetic Quest dataset, or (with
/// `--weblog`) the §4.8 dynamic web-log workload: day-partitioned
/// growth over a rotating hot set, with an optional churn rate that
/// expires old sessions as new ones arrive.
pub fn generate(flags: &Flags) -> CmdResult {
    if flags.has("weblog") {
        return generate_weblog(flags);
    }
    let out = flags.require("out")?;
    let cfg = QuestConfig {
        transactions: flags.require_parsed("transactions")?,
        items: flags.require_parsed("items")?,
        avg_txn_len: flags.get_parsed_or("avg-len", 10.0)?,
        avg_pattern_len: flags.get_parsed_or("pattern-len", 10.0)?,
        pattern_pool: flags.get_parsed_or("pattern-pool", 2000usize)?,
        correlation: 0.5,
        corruption_mean: 0.5,
        corruption_sd: 0.1,
        seed: flags.get_parsed_or("seed", 2002u64)?,
    };
    let db = bbs_datagen::generate_db(cfg);
    write_transactions_path(&db, Path::new(out))?;
    println!(
        "wrote {} ({} transactions, {} distinct items) to {out}",
        cfg.label(),
        db.len(),
        db.vocabulary().len()
    );
    Ok(())
}

/// The `--weblog` arm of [`generate`]: writes the transaction file with
/// one `# day N` marker per day boundary, and — when `--churn` is
/// nonzero — a companion `<out>.deletes` file with one line per day
/// listing the TIDs that expired that day (day 0's line is empty).  A
/// driver replays the pair as interleaved insert/delete batches.
fn generate_weblog(flags: &Flags) -> CmdResult {
    use std::io::Write;
    let out = flags.require("out")?;
    let days: usize = flags.get_parsed_or("days", 5usize)?;
    let sessions: usize = flags.get_parsed_or("sessions", 1000usize)?;
    let mut cfg = bbs_datagen::WeblogConfig::paper_scaled(days, sessions);
    cfg.files = flags.get_parsed_or("files", cfg.files)?;
    cfg.hot_fraction = flags.get_parsed_or("hot-fraction", cfg.hot_fraction)?;
    cfg.daily_rotation = flags.get_parsed_or("rotation", cfg.daily_rotation)?;
    cfg.avg_session_len = flags.get_parsed_or("avg-len", cfg.avg_session_len)?;
    cfg.churn_rate = flags.get_parsed_or("churn", 0.0f64)?;
    cfg.seed = flags.get_parsed_or("seed", cfg.seed)?;
    if !(0.0..=1.0).contains(&cfg.churn_rate) {
        return Err("--churn must be a fraction in [0, 1]".into());
    }

    let batches = bbs_datagen::WeblogGenerator::new(cfg).all_days();
    let mut body = String::new();
    let mut deletes = String::new();
    let mut total_txns = 0usize;
    let mut total_expired = 0usize;
    for batch in &batches {
        body.push_str(&format!("# day {}\n", batch.day));
        for t in &batch.transactions {
            let ids: Vec<String> = t.items.items().iter().map(|i| i.to_string()).collect();
            body.push_str(&format!("{}: {}\n", t.tid.0, ids.join(" ")));
        }
        total_txns += batch.transactions.len();
        let tids: Vec<String> = batch.expired_tids.iter().map(u64::to_string).collect();
        deletes.push_str(&tids.join(" "));
        deletes.push('\n');
        total_expired += batch.expired_tids.len();
    }
    std::fs::write(out, body)?;
    let mut summary = format!(
        "wrote weblog workload ({} day(s), {} sessions, {} files, rotation {}%) to {out}",
        days,
        total_txns,
        cfg.files,
        (cfg.daily_rotation * 100.0).round()
    );
    if cfg.churn_rate > 0.0 {
        let del_path = format!("{out}.deletes");
        let mut f = std::fs::File::create(&del_path)?;
        f.write_all(deletes.as_bytes())?;
        summary.push_str(&format!(
            "; {total_expired} expirations (churn {}%) to {del_path}",
            (cfg.churn_rate * 100.0).round()
        ));
    }
    println!("{summary}");
    Ok(())
}

/// `bbs index` — build a BBS index and persist it.
pub fn index(flags: &Flags) -> CmdResult {
    let db = load_db(flags)?;
    let out = flags.require("out")?;
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let mut io = IoStats::new();
    let start = Instant::now();
    let bbs = Bbs::build(width, hasher(flags)?, &db, &mut io);
    let secs = start.elapsed().as_secs_f64();
    persist::save_to_path(&bbs, Path::new(out))?;
    println!(
        "indexed {} transactions into {} slices ({} KiB dense) in {:.3}s -> {out}",
        bbs.rows(),
        bbs.width(),
        bbs.dense_bytes() / 1024,
        secs
    );
    Ok(())
}

fn parse_scheme(raw: &str) -> Result<Option<Scheme>, Box<dyn Error>> {
    match raw.to_ascii_lowercase().as_str() {
        "sfs" => Ok(Some(Scheme::Sfs)),
        "sfp" => Ok(Some(Scheme::Sfp)),
        "dfs" => Ok(Some(Scheme::Dfs)),
        "dfp" => Ok(Some(Scheme::Dfp)),
        "apriori" | "aps" | "fpgrowth" | "fps" => Ok(None),
        other => Err(format!(
            "unknown scheme {other:?} (expected sfs|sfp|dfs|dfp|apriori|fpgrowth)"
        )
        .into()),
    }
}

/// `bbs mine` — mine frequent patterns.
pub fn mine(flags: &Flags) -> CmdResult {
    let db = load_db(flags)?;
    let threshold = parse_threshold(flags.require("min-support")?)?;
    let scheme_raw = flags.get("scheme").unwrap_or("dfp").to_string();

    let start = Instant::now();
    let result: MineResult = match parse_scheme(&scheme_raw)? {
        Some(scheme) => {
            let bbs = load_or_build_index(flags, &db)?;
            BbsMiner::with_index(scheme, bbs).mine(&db, threshold)
        }
        None if scheme_raw.starts_with('a') => AprioriMiner::new().mine(&db, threshold),
        None => FpGrowthMiner::new().mine(&db, threshold),
    };
    let secs = start.elapsed().as_secs_f64();

    let mut patterns = result.patterns.sorted();
    patterns.sort_by_key(|p| std::cmp::Reverse(p.support));
    let top: usize = flags.get_parsed_or("top", usize::MAX)?;
    for p in patterns.iter().take(top) {
        let mark = if result.approx_supports.contains(&p.items) {
            " (upper bound)"
        } else {
            ""
        };
        let ids: Vec<String> = p.items.items().iter().map(|i| i.to_string()).collect();
        println!("{}\t{}{}", p.support, ids.join(" "), mark);
    }
    eprintln!(
        "# {} patterns in {:.3}s  (scheme {}, candidates {}, false drops {}, \
         db scans {}, probes {})",
        result.patterns.len(),
        secs,
        scheme_raw,
        result.stats.candidates,
        result.stats.false_drops,
        result.stats.io.db_scans,
        result.stats.io.db_probes,
    );
    Ok(())
}

/// `bbs count` — exact ad-hoc count of one itemset, optionally constrained.
pub fn count(flags: &Flags) -> CmdResult {
    let db = load_db(flags)?;
    let raw_items = flags.require("items")?;
    let mut values = Vec::new();
    for tok in raw_items.split_whitespace() {
        values.push(tok.parse::<u32>().map_err(|e| format!("bad item {tok:?}: {e}"))?);
    }
    if values.is_empty() {
        return Err("--items must name at least one item".into());
    }
    let itemset = Itemset::from_values(&values);

    let bbs = load_or_build_index(flags, &db)?;
    let engine = AdhocEngine::new(&bbs, &db);
    let mut io = IoStats::new();
    let start = Instant::now();
    let (count, constrained) = match flags.get("mod") {
        Some(raw) => {
            let divisor: u64 = raw.parse().map_err(|e| format!("bad --mod {raw:?}: {e}"))?;
            (
                engine.count_constrained(&itemset, &TidModulo::divisible_by(divisor), &mut io),
                true,
            )
        }
        None => (engine.count(&itemset, &mut io), false),
    };
    let secs = start.elapsed().as_secs_f64();
    let probes = io.db_probes;
    let estimate = engine.estimate(&itemset, &mut io);
    println!("{count}");
    eprintln!(
        "# exact count of {itemset:?}{} in {:.4}s ({} rows probed, estimate {})",
        if constrained { " under TID-mod constraint" } else { "" },
        secs,
        probes,
        estimate,
    );
    Ok(())
}

/// `bbs create` — lay down an empty sharded deployment directory:
/// a `MANIFEST` (shard count + signature width) plus one complete
/// per-shard durable stack under `DIR/shard-NNN.*`.
pub fn create(flags: &Flags) -> CmdResult {
    let dir = flags.require("base")?;
    let shards: usize = flags.require_parsed("shards")?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let cache_pages: usize = flags.get_parsed_or("cache-pages", 4096usize)?;
    let dep = bbs_shard::ShardedDeployment::create(
        Path::new(dir),
        shards,
        width,
        hasher(flags)?,
        cache_pages,
    )?;
    println!(
        "created sharded deployment {dir}/ ({} shard(s), width {})",
        dep.shard_count(),
        dep.width()
    );
    Ok(())
}

/// `bbs ingest` — append a text transaction file into a durable
/// deployment (`<base>.dat/.idx/.slices/.counts`), creating it if
/// absent.  When `--base` names a sharded deployment directory (made by
/// `bbs create --shards N`), transactions route to their owning shards.
pub fn ingest(flags: &Flags) -> CmdResult {
    let db = load_db(flags)?;
    let base = flags.require("base")?;
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let cache_pages: usize = flags.get_parsed_or("cache-pages", 4096usize)?;
    if bbs_shard::ShardedDeployment::is_sharded(Path::new(base)) {
        return ingest_sharded(flags, &db, base, cache_pages);
    }
    let start = Instant::now();
    let mut dep = bbs_storage::DiskDeployment::open(
        Path::new(base),
        width,
        hasher(flags)?,
        cache_pages,
    )?;
    let before = dep.db.len();
    for txn in db.transactions() {
        dep.append(txn)?;
    }
    dep.flush()?;
    println!(
        "ingested {} transactions (deployment now {} rows, index {} slices) in {:.3}s -> {base}.*",
        db.len(),
        dep.db.len(),
        dep.index.width(),
        start.elapsed().as_secs_f64()
    );
    let _ = before;
    Ok(())
}

/// The sharded arm of [`ingest`]: every transaction routes by TID to its
/// owning shard, each shard commits its own prefix.
fn ingest_sharded(
    flags: &Flags,
    db: &TransactionDb,
    dir: &str,
    cache_pages: usize,
) -> CmdResult {
    let start = Instant::now();
    let mut dep =
        bbs_shard::ShardedDeployment::open(Path::new(dir), hasher(flags)?, cache_pages)?;
    for txn in db.transactions() {
        dep.append(txn)?;
    }
    dep.flush()?;
    let rows: Vec<String> = dep.shard_rows().iter().map(u64::to_string).collect();
    println!(
        "ingested {} transactions across {} shard(s) (rows now {} = {}) in {:.3}s -> {dir}/",
        db.len(),
        dep.shard_count(),
        dep.rows(),
        rows.join("+"),
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Parses `--threads`: absent or `0` resolve to all available cores, any
/// other value is taken literally.  Rejects junk with a clear message.
pub fn parse_threads(flags: &Flags) -> Result<usize, Box<dyn Error>> {
    let requested: usize = match flags.get("threads") {
        Some(raw) => raw.parse().map_err(|e| {
            format!("bad --threads {raw:?}: {e} (expected 0 for all cores, or a positive count)")
        })?,
        None => 0,
    };
    Ok(bbs_server::resolve_threads(requested))
}

/// `bbs mine-deployment` — mine a durable deployment directly from its
/// files.
///
/// By default the run stays **in place**: the filter phase counts
/// straight off the slice file on `--threads N` worker threads (one
/// independent reader each; `0` or absent = all cores) and uncertain
/// candidates are refined by one streaming heap-file scan — the database
/// is never materialised in memory.  With `--in-memory` the index is
/// loaded once and mined there (the paper's memory-resident mode); the
/// patterns are identical either way.
pub fn mine_deployment(flags: &Flags) -> CmdResult {
    let base = flags.require("base")?;
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let cache_pages: usize = flags.get_parsed_or("cache-pages", 4096usize)?;
    let threshold = parse_threshold(flags.require("min-support")?)?;
    let scheme_raw = flags.get("scheme").unwrap_or("dfp").to_string();
    let Some(scheme) = parse_scheme(&scheme_raw)? else {
        return Err("mine-deployment supports the BBS schemes only (sfs|sfp|dfs|dfp)".into());
    };
    let threads: Option<usize> = if flags.has("in-memory") {
        if flags.get("threads").is_some() {
            return Err(
                "--in-memory and --threads conflict: thread workers apply to in-place \
                 mining only (drop --in-memory, or drop --threads)"
                    .into(),
            );
        }
        None
    } else {
        Some(parse_threads(flags)?)
    };

    if bbs_shard::ShardedDeployment::is_sharded(Path::new(base)) {
        let Some(threads) = threads else {
            return Err(
                "--in-memory does not apply to a sharded deployment (sharded mining \
                 is always in place, dealing candidates across shards x cores)"
                    .into(),
            );
        };
        return mine_deployment_sharded(flags, base, threshold, scheme, threads, cache_pages);
    }

    let start = Instant::now();
    let mut dep = bbs_storage::DiskDeployment::open(
        Path::new(base),
        width,
        hasher(flags)?,
        cache_pages,
    )?;
    let open_secs = start.elapsed().as_secs_f64();

    let mine_start = Instant::now();
    let (result, disk_stats, rows) = match threads {
        Some(threads) => {
            let rows = dep.db.len();
            let (result, stats) = bbs_storage::mine_in_place(&mut dep, scheme, threshold, threads)?;
            (result, Some(stats), rows)
        }
        None => {
            let db = dep.db.load()?;
            let bbs = dep.index.load()?;
            let rows = db.len() as u64;
            (BbsMiner::with_index(scheme, bbs).mine(&db, threshold), None, rows)
        }
    };
    let mine_secs = mine_start.elapsed().as_secs_f64();

    let mut patterns = result.patterns.sorted();
    patterns.sort_by_key(|p| std::cmp::Reverse(p.support));
    let top: usize = flags.get_parsed_or("top", usize::MAX)?;
    for p in patterns.iter().take(top) {
        let mark = if result.approx_supports.contains(&p.items) {
            " (upper bound)"
        } else {
            ""
        };
        let ids: Vec<String> = p.items.items().iter().map(|i| i.to_string()).collect();
        println!("{}\t{}{}", p.support, ids.join(" "), mark);
    }
    eprintln!(
        "# {} patterns over {} rows (open {:.3}s, mine {:.3}s, scheme {}{})",
        result.patterns.len(),
        rows,
        open_secs,
        mine_secs,
        scheme.name(),
        match threads {
            Some(t) => format!(", in place on {t} thread(s)"),
            None => ", memory-resident".to_string(),
        },
    );
    if let Some(stats) = disk_stats {
        print_disk_stats(&stats);
    }
    Ok(())
}

/// The sharded arm of [`mine_deployment`]: in-place mining with candidate
/// subtrees dealt across workers, each counting across every shard —
/// the result is bit-for-bit an unsharded run over the same rows.
fn mine_deployment_sharded(
    flags: &Flags,
    dir: &str,
    threshold: bbs_tdb::SupportThreshold,
    scheme: Scheme,
    threads: usize,
    cache_pages: usize,
) -> CmdResult {
    let start = Instant::now();
    let mut dep =
        bbs_shard::ShardedDeployment::open(Path::new(dir), hasher(flags)?, cache_pages)?;
    let open_secs = start.elapsed().as_secs_f64();
    let mine_start = Instant::now();
    let (result, stats) = bbs_shard::mine_sharded(&mut dep, scheme, threshold, threads)?;
    let mine_secs = mine_start.elapsed().as_secs_f64();

    let mut patterns = result.patterns.sorted();
    patterns.sort_by_key(|p| std::cmp::Reverse(p.support));
    let top: usize = flags.get_parsed_or("top", usize::MAX)?;
    for p in patterns.iter().take(top) {
        let mark = if result.approx_supports.contains(&p.items) {
            " (upper bound)"
        } else {
            ""
        };
        let ids: Vec<String> = p.items.items().iter().map(|i| i.to_string()).collect();
        println!("{}\t{}{}", p.support, ids.join(" "), mark);
    }
    eprintln!(
        "# {} patterns over {} rows in {} shard(s) (open {:.3}s, mine {:.3}s, \
         scheme {}, in place on {} thread(s))",
        result.patterns.len(),
        dep.rows(),
        dep.shard_count(),
        open_secs,
        mine_secs,
        scheme.name(),
        threads,
    );
    print_disk_stats(&stats);
    Ok(())
}

/// Prints the aggregated read-side counters of an in-place mining run.
fn print_disk_stats(stats: &bbs_storage::DiskMineStats) {
    eprintln!(
        "# cache: {} hits, {} misses, {} evictions, hit rate {}",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        match stats.hit_rate() {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        },
    );
    eprintln!(
        "# pager: {} page reads, {} checksum-page reads, {} pages checksum-verified",
        stats.pager.reads, stats.pager.checksum_reads, stats.pager.verified,
    );
    eprintln!(
        "# hot slices: {} hits, {} decoded, {} invalidations ({} reader(s))",
        stats.hot.hits, stats.hot.decodes, stats.hot.invalidations, stats.readers,
    );
}

/// `bbs compact` — offline maintenance of a durable deployment: rewrite
/// it without its tombstoned rows (`--width M` re-hashes into a
/// different slice width at the same time), or halve the slice width in
/// place with `--fold`.  Both run behind the atomic epoch-swap protocol,
/// so a crash at any point leaves either the old or the new deployment.
/// A sharded directory applies the operation to every shard and updates
/// the manifest width.
pub fn compact(flags: &Flags) -> CmdResult {
    let base = flags.require("base")?;
    let cache_pages: usize = flags.get_parsed_or("cache-pages", 4096usize)?;
    let fold = flags.has("fold");
    let target_width: Option<usize> = match flags.get("width") {
        Some(raw) => Some(raw.parse().map_err(|e| format!("bad --width {raw:?}: {e}"))?),
        None => None,
    };
    if fold && target_width.is_some() {
        return Err("--fold and --width conflict: fold always halves the width".into());
    }
    let hasher = hasher(flags)?;
    let run = |shard_base: &Path, width_hint: usize| -> Result<_, Box<dyn Error>> {
        let report = if fold {
            bbs_storage::fold_deployment(shard_base, Arc::clone(&hasher), cache_pages)?
        } else {
            bbs_storage::compact_deployment(
                shard_base,
                width_hint,
                Arc::clone(&hasher),
                target_width,
                cache_pages,
            )?
        };
        Ok(report)
    };

    if bbs_shard::ShardedDeployment::is_sharded(Path::new(base)) {
        let mut manifest = bbs_shard::Manifest::read(Path::new(base))?;
        let mut width = manifest.width;
        for shard in 0..manifest.shards {
            let sb = bbs_shard::shard_base(Path::new(base), shard);
            let report = run(&sb, manifest.width)?;
            println!(
                "shard {:03}: {} to width {} ({} -> {} rows, {} reclaimed, seq {})",
                shard,
                report.action,
                report.width,
                report.rows_before,
                report.rows_after,
                report.reclaimed,
                report.seq
            );
            width = report.width;
        }
        if width != manifest.width {
            // Folds and width-changing compactions moved every shard in
            // lockstep; record the new width so reopen hints match.
            manifest.width = width;
            manifest.write(Path::new(base))?;
            println!("manifest width updated to {width}");
        }
        return Ok(());
    }
    if !Path::new(&format!("{base}.commit")).exists() {
        // compact_deployment would create a fresh empty deployment from
        // nothing; maintenance of a base that was never built is a typo.
        return Err(format!("no deployment at {base} (missing {base}.commit)").into());
    }
    let width_hint: usize = flags.get_parsed_or("width", 1600usize)?;
    let report = run(Path::new(base), width_hint)?;
    println!(
        "{}: width {} ({} -> {} rows, {} tombstoned row(s) reclaimed, commit seq {})",
        report.action,
        report.width,
        report.rows_before,
        report.rows_after,
        report.reclaimed,
        report.seq
    );
    Ok(())
}

/// `bbs fsck` — read-only integrity check of a durable deployment.
///
/// Verifies every committed page of `<base>.dat/.idx/.slices/.counts`
/// against the stored per-page checksums and the commit record's
/// boundary digests, without opening (and therefore without recovering)
/// the deployment.  Exits nonzero if any corruption is found.
pub fn fsck(flags: &Flags) -> CmdResult {
    let base = flags.require("base")?;
    if bbs_shard::ShardedDeployment::is_sharded(Path::new(base)) {
        return fsck_sharded(base);
    }
    let report = bbs_storage::DiskDeployment::verify(Path::new(base))?;
    print!("{report}");
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{}: {} corrupt page(s), {} structural problem(s)",
            base,
            report.corrupt_pages.len(),
            report.problems.len()
        )
        .into())
    }
}

/// The sharded arm of [`fsck`]: every shard verifies in parallel, one
/// summary line per shard, and the exit is nonzero if *any* shard is
/// dirty.
fn fsck_sharded(dir: &str) -> CmdResult {
    let reports = bbs_shard::ShardedDeployment::verify(Path::new(dir))?;
    let mut dirty = 0usize;
    for r in &reports {
        if r.report.is_clean() {
            let dead = r.report.deleted_rows.min(r.report.committed_rows);
            println!(
                "shard {:03}: clean ({} committed rows: {} live, {} tombstoned; {} pages checked)",
                r.shard,
                r.report.committed_rows,
                r.report.committed_rows - dead,
                dead,
                r.report.pages_checked
            );
        } else {
            dirty += 1;
            println!(
                "shard {:03}: DIRTY ({} corrupt page(s), {} structural problem(s), \
                 {} committed rows)",
                r.shard,
                r.report.corrupt_pages.len(),
                r.report.problems.len(),
                r.report.committed_rows
            );
        }
    }
    if dirty == 0 {
        Ok(())
    } else {
        Err(format!("{dir}: {dirty} of {} shard(s) dirty", reports.len()).into())
    }
}

/// `bbs stats` — dataset summary (`--db`), or a cache/pager profile of an
/// in-place mining run over a deployment (`--base`).
pub fn stats(flags: &Flags) -> CmdResult {
    if let Some(base) = flags.get("base") {
        return deployment_stats(flags, base);
    }
    let db = load_db(flags)?;
    let vocab = db.vocabulary();
    let total_items: usize = db.transactions().iter().map(|t| t.items.len()).sum();
    let longest = db
        .transactions()
        .iter()
        .map(|t| t.items.len())
        .max()
        .unwrap_or(0);
    println!("transactions      : {}", db.len());
    println!("distinct items    : {}", vocab.len());
    println!(
        "avg items per txn : {:.2}",
        total_items as f64 / db.len() as f64
    );
    println!("longest txn       : {longest}");
    println!("flat-file bytes   : {}", db.total_bytes());
    println!("pages (4 KiB)     : {}", db.total_pages());
    Ok(())
}

/// `bbs stats --base PATH` — run one in-place mining pass over a durable
/// deployment and report the read-side counters (cache hits/misses/hit
/// rate, physical reads, checksum-verified pages, hot-slice activity).
fn deployment_stats(flags: &Flags, base: &str) -> CmdResult {
    let width: usize = flags.get_parsed_or("width", 1600usize)?;
    let cache_pages: usize = flags.get_parsed_or("cache-pages", 4096usize)?;
    // Default stays serial (a deterministic profile); explicit `0` asks
    // for all cores, like everywhere else.
    let threads: usize = match flags.get("threads") {
        Some(_) => parse_threads(flags)?,
        None => 1,
    };
    let threshold = parse_threshold(flags.get("min-support").unwrap_or("1%"))?;
    let scheme_raw = flags.get("scheme").unwrap_or("dfs").to_string();
    let Some(scheme) = parse_scheme(&scheme_raw)? else {
        return Err("stats --base supports the BBS schemes only (sfs|sfp|dfs|dfp)".into());
    };

    let mut dep = bbs_storage::DiskDeployment::open(
        Path::new(base),
        width,
        hasher(flags)?,
        cache_pages,
    )?;
    println!("deployment        : {base}.*");
    println!("rows              : {}", dep.db.len());
    println!("committed rows    : {}", dep.committed_rows());
    println!("slices (width m)  : {}", dep.index.width());
    println!("slice cache pages : {cache_pages}");

    let start = Instant::now();
    let (result, stats) = bbs_storage::mine_in_place(&mut dep, scheme, threshold, threads)?;
    let secs = start.elapsed().as_secs_f64();
    println!(
        "mining run        : scheme {}, {} pattern(s), {} CountItemSet call(s), {:.3}s on {} thread(s)",
        scheme.name(),
        result.patterns.len(),
        result.stats.bbs_counts,
        secs,
        threads,
    );
    println!(
        "cache             : {} hits, {} misses, {} evictions, hit rate {}",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        match stats.hit_rate() {
            Some(r) => format!("{:.1}%", r * 100.0),
            None => "n/a".to_string(),
        },
    );
    println!(
        "pager             : {} page reads, {} checksum-page reads, {} pages checksum-verified",
        stats.pager.reads, stats.pager.checksum_reads, stats.pager.verified,
    );
    println!(
        "hot slices        : {} hits, {} decoded, {} invalidations across {} reader(s)",
        stats.hot.hits, stats.hot.decodes, stats.hot.invalidations, stats.readers,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn flags(pairs: &[(&str, &str)]) -> Flags {
        Flags::parse(
            pairs
                .iter()
                .flat_map(|(k, v)| [format!("--{k}"), v.to_string()]),
        )
    }

    fn temp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_cli_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn fsck_missing_deployment_is_an_error() {
        let base = temp("fsck_missing");
        let err = fsck(&flags(&[("base", base.to_str().expect("utf8"))]))
            .expect_err("missing deployment must fail");
        assert!(err.to_string().contains("commit record"), "{err}");
    }

    #[test]
    fn mine_deployment_in_place_and_stats_profile_run() {
        let db_path = temp("inplace_db.txt");
        let base = temp("inplace_dep");
        let mut lines = String::new();
        for i in 0..60 {
            lines.push_str(&format!("{} {} 7 8\n", i % 5, 5 + (i % 2)));
        }
        std::fs::write(&db_path, lines).expect("write db");
        let base_s = base.to_str().expect("utf8").to_string();
        ingest(&flags(&[
            ("db", db_path.to_str().expect("utf8")),
            ("base", &base_s),
            ("width", "64"),
        ]))
        .expect("ingest");

        // In-place threaded mining and the stats profile both succeed on
        // the same deployment.
        mine_deployment(&flags(&[
            ("base", &base_s),
            ("width", "64"),
            ("min-support", "50%"),
            ("scheme", "dfs"),
            ("threads", "2"),
        ]))
        .expect("mine in place");
        stats(&flags(&[
            ("base", &base_s),
            ("width", "64"),
            ("min-support", "50%"),
            ("threads", "2"),
        ]))
        .expect("deployment stats");

        bbs_storage::DiskDeployment::remove_files(&base).ok();
        std::fs::remove_file(&db_path).ok();
    }

    #[test]
    fn sharded_cli_create_ingest_mine_and_fsck() {
        let db_path = temp("shard_db.txt");
        let dir = temp("shard_dep");
        let _cleanup = CleanupShards(dir.clone(), db_path.clone());
        let mut lines = String::new();
        for i in 0..60 {
            lines.push_str(&format!("{i}: {} {} 7 8\n", i % 5, 5 + (i % 2)));
        }
        std::fs::write(&db_path, lines).expect("write db");
        let dir_s = dir.to_str().expect("utf8").to_string();

        create(&flags(&[("base", &dir_s), ("shards", "3"), ("width", "64")]))
            .expect("create sharded");
        assert!(bbs_shard::ShardedDeployment::is_sharded(&dir));

        // `bbs ingest` detects the shard directory and routes by TID.
        ingest(&flags(&[
            ("db", db_path.to_str().expect("utf8")),
            ("base", &dir_s),
        ]))
        .expect("sharded ingest");
        let dep = bbs_shard::ShardedDeployment::open(
            &dir,
            std::sync::Arc::new(bbs_hash::Md5BloomHasher::new(4)),
            64,
        )
        .expect("reopen");
        assert_eq!(dep.rows(), 60);
        assert_eq!(dep.shard_rows(), &[20, 20, 20]);
        drop(dep);

        // In-place sharded mining runs; the memory-resident mode is an
        // unsharded-only flag and must say so.
        mine_deployment(&flags(&[
            ("base", &dir_s),
            ("min-support", "50%"),
            ("scheme", "dfp"),
            ("threads", "2"),
        ]))
        .expect("sharded mine");
        let err = mine_deployment(&Flags::parse(
            ["--base", &dir_s, "--min-support", "50%", "--in-memory"]
                .iter()
                .map(|s| s.to_string()),
        ))
        .expect_err("--in-memory must be rejected on a shard directory");
        assert!(err.to_string().contains("sharded"), "{err}");

        // fsck: clean shards pass; flipping one committed byte in one
        // shard's heap file dirties exactly that shard and the exit.
        fsck(&flags(&[("base", &dir_s)])).expect("clean shards verify");
        let dat = bbs_shard::shard_base(&dir, 1).with_extension("dat");
        let mut bytes = std::fs::read(&dat).expect("read shard dat");
        bytes[bbs_storage::PAGE_SIZE + 4] ^= 0x40;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&dat)
            .and_then(|mut fh| fh.write_all(&bytes))
            .expect("corrupt shard dat");
        let err = fsck(&flags(&[("base", &dir_s)])).expect_err("dirty shard must fail");
        assert!(err.to_string().contains("1 of 3 shard(s) dirty"), "{err}");
    }

    struct CleanupShards(std::path::PathBuf, std::path::PathBuf);
    impl Drop for CleanupShards {
        fn drop(&mut self) {
            bbs_shard::ShardedDeployment::remove_files(&self.0).ok();
            std::fs::remove_file(&self.1).ok();
        }
    }

    #[test]
    fn create_rejects_zero_shards() {
        let dir = temp("shard_zero");
        let err = create(&flags(&[
            ("base", dir.to_str().expect("utf8")),
            ("shards", "0"),
        ]))
        .expect_err("zero shards must fail");
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn fsck_passes_clean_and_fails_corrupt_deployments() {
        let db_path = temp("fsck_db.txt");
        let base = temp("fsck_dep");
        std::fs::write(&db_path, "1 2 3\n2 3 4\n3 4 5\n").expect("write db");
        let base_s = base.to_str().expect("utf8").to_string();
        let f = flags(&[
            ("db", db_path.to_str().expect("utf8")),
            ("base", &base_s),
            ("width", "64"),
        ]);
        ingest(&f).expect("ingest");

        fsck(&flags(&[("base", &base_s)])).expect("clean deployment verifies");

        // Flip one committed byte in the heap data file (physical page 1
        // is the first data page; the committed tail covers its prefix).
        let dat = base.with_extension("dat");
        let mut bytes = std::fs::read(&dat).expect("read dat");
        bytes[bbs_storage::PAGE_SIZE + 4] ^= 0x40;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&dat)
            .and_then(|mut fh| fh.write_all(&bytes))
            .expect("corrupt dat");

        let err = fsck(&flags(&[("base", &base_s)])).expect_err("corruption must fail");
        assert!(err.to_string().contains("corrupt page"), "{err}");

        bbs_storage::DiskDeployment::remove_files(&base).ok();
        std::fs::remove_file(&db_path).ok();
    }
}
