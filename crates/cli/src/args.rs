//! A minimal flag parser for the `bbs` tool — `--key value` pairs and bare
//! boolean switches, with typed accessors.  Deliberately dependency-free.

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, Vec<String>>,
    switches: Vec<String>,
    positional: Vec<String>,
}

/// A flag error with a user-facing message.
#[derive(Debug)]
pub struct FlagError(pub String);

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for FlagError {}

impl Flags {
    /// Parses an argument list.  A `--key` followed by a non-flag token is a
    /// valued flag; a `--key` followed by another flag (or nothing) is a
    /// switch; anything else is positional.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Flags {
        let mut flags = Flags::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let takes_value = iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false);
                match iter.next_if(|_| takes_value) {
                    Some(value) => {
                        flags.values.entry(key.to_string()).or_default().push(value);
                    }
                    None => flags.switches.push(key.to_string()),
                }
            } else {
                flags.positional.push(arg);
            }
        }
        flags
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// True if a bare `--switch` was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A string flag, if present.  When the flag was repeated, the last
    /// occurrence wins (single-value flags keep their overwrite
    /// semantics); use [`Flags::get_all`] for repeatable flags.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every occurrence of a repeatable `--key value` flag, in the order
    /// given on the command line (empty when the flag is absent).
    pub fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, FlagError> {
        self.get(key)
            .ok_or_else(|| FlagError(format!("missing required flag --{key}")))
    }

    /// A parsed flag with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, FlagError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|e| FlagError(format!("bad value for --{key} ({raw:?}): {e}"))),
        }
    }

    /// A required parsed flag.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, FlagError>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.require(key)?;
        raw.parse::<T>()
            .map_err(|e| FlagError(format!("bad value for --{key} ({raw:?}): {e}")))
    }
}

/// Parses a support threshold: either `N` (absolute count) or `P%`.
pub fn parse_threshold(raw: &str) -> Result<bbs_tdb::SupportThreshold, FlagError> {
    if let Some(pct) = raw.strip_suffix('%') {
        let p: f64 = pct
            .parse()
            .map_err(|e| FlagError(format!("bad percentage {raw:?}: {e}")))?;
        if !(0.0..=100.0).contains(&p) {
            return Err(FlagError(format!("percentage out of range: {raw}")));
        }
        Ok(bbs_tdb::SupportThreshold::percent(p))
    } else {
        let c: u64 = raw
            .parse()
            .map_err(|e| FlagError(format!("bad count {raw:?}: {e}")))?;
        Ok(bbs_tdb::SupportThreshold::Count(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Flags {
        Flags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn values_switches_positional() {
        let f = parse(&["mine", "--db", "x.txt", "--quick", "--width", "400"]);
        assert_eq!(f.positional(), &["mine".to_string()]);
        assert_eq!(f.get("db"), Some("x.txt"));
        assert_eq!(f.get_parsed_or("width", 0usize).unwrap(), 400);
        assert!(f.has("quick"));
        assert!(!f.has("db"));
    }

    #[test]
    fn repeated_flags_accumulate_and_last_wins_for_get() {
        let f = parse(&[
            "--itemset", "1,2", "--itemset", "3", "--width", "8", "--width", "16",
        ]);
        assert_eq!(f.get_all("itemset"), &["1,2".to_string(), "3".to_string()]);
        assert_eq!(f.get("itemset"), Some("3"));
        assert_eq!(f.get("width"), Some("16"));
        assert!(f.get_all("missing").is_empty());
    }

    #[test]
    fn require_reports_missing() {
        let f = parse(&[]);
        assert!(f.require("db").is_err());
        assert!(f.require_parsed::<u64>("n").is_err());
    }

    #[test]
    fn parse_errors_are_descriptive() {
        let f = parse(&["--width", "abc"]);
        let err = f.get_parsed_or("width", 0usize).unwrap_err();
        assert!(err.to_string().contains("width"));
    }

    #[test]
    fn threshold_forms() {
        assert!(matches!(
            parse_threshold("30").unwrap(),
            bbs_tdb::SupportThreshold::Count(30)
        ));
        match parse_threshold("0.3%").unwrap() {
            bbs_tdb::SupportThreshold::Fraction(f) => assert!((f - 0.003).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_threshold("x%").is_err());
        assert!(parse_threshold("101%").is_err());
        assert!(parse_threshold("-1").is_err());
    }
}
