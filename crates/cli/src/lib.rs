//! Library surface of the `bbs` command-line tool (see `src/main.rs` for
//! the binary).  Exposed as a library so the subcommands are unit-testable.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod server_cmd;
