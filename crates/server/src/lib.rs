//! `bbs-server` — a concurrent query/ingest daemon over a BBS deployment.
//!
//! The paper's deployment scenario (§5) is an index that keeps serving
//! `CountItemSet` and mining queries while the transaction stream grows.
//! This crate is that scenario as a running system:
//!
//! * [`engine`] — the request engine: snapshot-isolated reads over
//!   `bbs_storage::snapshot`, and a **group-commit** write path where a
//!   bounded MPSC queue feeds one committer thread that coalesces every
//!   waiting producer into a single append + fsync + commit record.
//! * [`proto`] — the length-prefixed binary wire protocol (one `u32 LE`
//!   length, one opcode byte, little-endian bodies) with typed
//!   `Ok / Overloaded / DiskFull / BadFrame / Err` responses.
//! * [`net`] — TCP and Unix-socket listeners with per-connection handler
//!   threads, interruptible frame reads, request deadlines, and graceful
//!   drain (in-flight requests answered, queued ingest committed).
//! * [`metrics`] — lock-free per-endpoint counters and log2 latency
//!   histograms, served as JSON by the `stats` endpoint.
//! * [`sharded`] — the shard router: one [`ShardedEngine`] over N
//!   TID-range shards, each a complete engine with its own committer
//!   (inserts route by TID, reads scatter-gather and sum).
//! * [`client`] — the matching client library ([`Client`]), one typed
//!   method per endpoint, plus [`RetryClient`]: reconnect + exponential
//!   backoff with jitter, and exactly-once inserts via stable request
//!   IDs reused across retries.
//!
//! A query never observes a half-appended batch: reads run against
//! epoch-stamped snapshots that are published only after their commit
//! record is durable (see `bbs_storage::snapshot` for the protocol).
//! Every insert may carry a request ID; the engine's durable dedup
//! window turns retries of already-committed batches into their original
//! receipts, so a reply lost to a crash, timeout, or dropped connection
//! never becomes a duplicate append.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod engine;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod sharded;

pub use client::{
    Client, ClientError, ClientResult, CountManyReply, CountReply, CountsAtReply, DeleteReply,
    InsertReply, MaintainReply, MineReply, PinReply, PromoteReply, ReplicateReply, RetryClient,
    RetryPolicy, RetryStats, RowsReply, ServerAddr,
};
pub use engine::{resolve_threads, Engine, InsertOutcome, Role, ServerConfig};
pub use metrics::{Endpoint, Histogram, ServerMetrics};
pub use net::{serve, Bind, RequestHandler, ServerHandle};
pub use proto::{maintain_action, LogEntry, Reply, Request, Response};
pub use sharded::{ScatterMetrics, ShardFaults, ShardedEngine};
