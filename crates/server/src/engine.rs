//! The request engine: snapshot-isolated reads, group-committed writes.
//!
//! An [`Engine`] wraps a [`SharedDeployment`] with the server's two data
//! paths:
//!
//! * **Write path** — [`Engine::insert`] does not touch the files.  It
//!   enqueues the batch on a **bounded** MPSC queue ([`ServerConfig::
//!   queue_capacity`]) and waits for a receipt.  A dedicated *committer*
//!   thread drains the queue, coalescing everything waiting (up to
//!   [`ServerConfig::batch_max`] transactions) into **one** group commit:
//!   one slice/heap append pass, one fsync set, one commit record —
//!   however many producers are blocked on it.  A full queue is answered
//!   with the typed [`Response::Overloaded`], never by blocking the
//!   connection handler forever; a receipt that takes longer than
//!   [`ServerConfig::insert_timeout`] returns a timeout error while the
//!   commit itself still completes.
//! * **Read path** — [`Engine::count`], [`Engine::probe`] and
//!   [`Engine::mine`] run against the latest published [`Snapshot`]:
//!   concurrent with ingest, never observing a half-appended batch
//!   (see `bbs_storage::snapshot` for the isolation protocol).  `mine`
//!   materialises the snapshot in memory first and mines offline, so a
//!   long mine never delays commits.
//!
//! [`Engine::handle`] is the single dispatcher the transport layer calls:
//! request in, response out, metrics recorded — it is transport-agnostic
//! and unit-testable without a socket.

use crate::metrics::ServerMetrics;
use crate::proto::{Reply, Request, Response};
use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::snapshot::{SharedDeployment, Snapshot};
use bbs_tdb::{FrequentPatternMiner, Itemset, SupportThreshold, Transaction};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resolves a requested thread count: `0` (or absent, mapped to `0` by
/// callers) means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Signature width in bits for a freshly created deployment (must
    /// match the on-disk width when opening an existing one).
    pub width: usize,
    /// Page-cache capacity per file handle.
    pub cache_pages: usize,
    /// Bounded ingest queue: jobs beyond this are answered `Overloaded`.
    pub queue_capacity: usize,
    /// Maximum transactions coalesced into one group commit.
    pub batch_max: usize,
    /// Default worker threads for `mine` requests that ask for `0`.
    pub mine_threads: usize,
    /// How long an insert waits for its commit receipt before reporting a
    /// timeout (the commit itself still lands).
    pub insert_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            width: 64,
            cache_pages: 1024,
            queue_capacity: 256,
            batch_max: 4096,
            mine_threads: 0,
            insert_timeout: Duration::from_secs(30),
        }
    }
}

/// One queued ingest batch and the channel its receipt goes back on.
struct IngestJob {
    txns: Vec<Transaction>,
    reply: SyncSender<Result<(u64, u64, u64), String>>,
}

/// The outcome of [`Engine::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Batch is durable: `(first_row, appended, epoch)`.
    Committed {
        /// First row the batch occupies.
        first_row: u64,
        /// Rows appended.
        appended: u64,
        /// Epoch whose snapshot first shows the batch.
        epoch: u64,
    },
    /// The bounded queue was full (or the server is draining).
    Overloaded,
    /// The commit failed or its receipt did not arrive in time.
    Failed(String),
}

/// The server's request engine (transport-agnostic).
pub struct Engine {
    shared: Arc<SharedDeployment>,
    metrics: Arc<ServerMetrics>,
    ingest: SyncSender<IngestJob>,
    committer: Mutex<Option<JoinHandle<()>>>,
    draining: Arc<AtomicBool>,
    cfg: ServerConfig,
}

impl Engine {
    /// Opens (creating or crash-recovering) the deployment at `base` with
    /// the default MD5 Bloom hasher and spawns the committer thread.
    pub fn open(base: &Path, cfg: ServerConfig) -> io::Result<Arc<Engine>> {
        let hasher: Arc<dyn ItemHasher> = Arc::new(Md5BloomHasher::new(4));
        Engine::open_with(base, cfg, hasher)
    }

    /// [`Engine::open`] with an explicit hash family.
    pub fn open_with(
        base: &Path,
        cfg: ServerConfig,
        hasher: Arc<dyn ItemHasher>,
    ) -> io::Result<Arc<Engine>> {
        let shared = SharedDeployment::open(base, cfg.width, hasher, cfg.cache_pages)?;
        let metrics = Arc::new(ServerMetrics::new());
        let (tx, rx) = mpsc::sync_channel::<IngestJob>(cfg.queue_capacity);
        let draining = Arc::new(AtomicBool::new(false));
        let committer = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let draining = Arc::clone(&draining);
            let batch_max = cfg.batch_max.max(1);
            std::thread::Builder::new()
                .name("bbs-committer".into())
                .spawn(move || committer_loop(&shared, &metrics, &draining, &rx, batch_max))?
        };
        Ok(Arc::new(Engine {
            shared,
            metrics,
            ingest: tx,
            committer: Mutex::new(Some(committer)),
            draining,
            cfg,
        }))
    }

    /// The engine's metrics (shared with the transport layer).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot()
    }

    /// True once [`Engine::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Stops admitting inserts; queued batches still commit.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Waits for the committer to drain the queue and exit.  Idempotent;
    /// implies [`Engine::begin_drain`].
    pub fn join(&self) {
        self.begin_drain();
        let handle = self
            .committer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.join().ok();
        }
    }

    /// Submits a batch through the bounded queue and waits for its group
    /// commit receipt.
    pub fn insert(&self, txns: Vec<Transaction>) -> InsertOutcome {
        if txns.is_empty() {
            // Nothing to commit; answer from the current epoch.
            let snap = self.shared.snapshot();
            return InsertOutcome::Committed {
                first_row: snap.rows(),
                appended: 0,
                epoch: snap.epoch(),
            };
        }
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::Overloaded;
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = IngestJob {
            txns,
            reply: reply_tx,
        };
        match self.ingest.try_send(job) {
            Ok(()) => {
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                return InsertOutcome::Overloaded;
            }
        }
        match reply_rx.recv_timeout(self.cfg.insert_timeout) {
            Ok(Ok((first_row, appended, epoch))) => InsertOutcome::Committed {
                first_row,
                appended,
                epoch,
            },
            Ok(Err(msg)) => InsertOutcome::Failed(msg),
            Err(_) => InsertOutcome::Failed(format!(
                "commit receipt not received within {:?} (the batch may still commit)",
                self.cfg.insert_timeout
            )),
        }
    }

    /// `CountItemSet` against the latest snapshot.
    pub fn count(&self, items: &[u32]) -> io::Result<(u64, Arc<Snapshot>)> {
        let snap = self.shared.snapshot();
        let support = snap.count(&Itemset::from_values(items))?;
        Ok((support, snap))
    }

    /// Probes one row of the latest snapshot.
    pub fn probe(&self, row: u64) -> io::Result<Option<Transaction>> {
        self.shared.snapshot().probe(row)
    }

    /// Mines the latest snapshot offline: loads it into memory (the only
    /// part that contends with commits), then runs the in-memory miner.
    pub fn mine(
        &self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: usize,
    ) -> io::Result<(bbs_tdb::MineResult, Arc<Snapshot>)> {
        let snap = self.shared.snapshot();
        let (db, bbs) = snap.load()?;
        let threads = if threads == 0 {
            resolve_threads(self.cfg.mine_threads)
        } else {
            threads
        };
        let mut miner = bbs_core::BbsMiner::with_index(scheme, bbs).with_threads(threads);
        let result = miner.mine(&db, threshold);
        Ok((result, snap))
    }

    /// Renders the stats document: wire metrics plus engine/storage state.
    pub fn stats_json(&self) -> String {
        let snap = self.shared.snapshot();
        let profile = self.shared.writer_profile();
        let extra = vec![
            format!("\"epoch\":{}", snap.epoch()),
            format!("\"rows\":{}", snap.rows()),
            format!("\"queue_capacity\":{}", self.cfg.queue_capacity),
            format!("\"batch_max\":{}", self.cfg.batch_max),
            format!("\"draining\":{}", self.is_draining()),
            format!("\"commits\":{}", profile.commits),
            format!("\"appended\":{}", profile.appended),
            format!("\"committed_rows\":{}", profile.committed_rows),
            format!(
                "\"writer_pager\":{{\"reads\":{},\"writes\":{},\"checksum_reads\":{},\"checksum_writes\":{}}}",
                profile.pager.reads,
                profile.pager.writes,
                profile.pager.checksum_reads,
                profile.pager.checksum_writes
            ),
            format!(
                "\"writer_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                profile.cache.hits, profile.cache.misses, profile.cache.evictions
            ),
            format!(
                "\"writer_hot\":{{\"pinned\":{},\"hits\":{},\"decodes\":{},\"invalidations\":{}}}",
                profile.hot.pinned, profile.hot.hits, profile.hot.decodes, profile.hot.invalidations
            ),
        ];
        self.metrics.to_json(&extra)
    }

    /// Executes one decoded request and produces its response, recording
    /// per-endpoint metrics.  [`Request::Shutdown`] only marks the engine
    /// draining — the transport layer watches [`Engine::is_draining`] and
    /// owns socket teardown.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let opcode = req.opcode();
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.requests.fetch_add(1, Ordering::Relaxed);
        }
        let resp = self.dispatch(req);
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.latency_us
                .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            if matches!(resp, Response::Err(_)) {
                ep.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Ok(Reply::Pong),
            Request::Count { items } => match self.count(items) {
                Ok((support, snap)) => Response::Ok(Reply::Count {
                    support,
                    epoch: snap.epoch(),
                    rows: snap.rows(),
                }),
                Err(e) => Response::Err(format!("count failed: {e}")),
            },
            Request::Insert { txns } => {
                let txns: Vec<Transaction> = txns
                    .iter()
                    .map(|(tid, items)| Transaction::new(*tid, Itemset::from_values(items)))
                    .collect();
                match self.insert(txns) {
                    InsertOutcome::Committed {
                        first_row,
                        appended,
                        epoch,
                    } => Response::Ok(Reply::Insert {
                        first_row,
                        appended,
                        epoch,
                    }),
                    InsertOutcome::Overloaded => Response::Overloaded,
                    InsertOutcome::Failed(msg) => Response::Err(msg),
                }
            }
            Request::Mine {
                scheme,
                threshold,
                threads,
            } => match self.mine(*scheme, *threshold, usize::from(*threads)) {
                Ok((result, snap)) => {
                    let mut patterns: Vec<(Vec<u32>, u64, bool)> = result
                        .patterns
                        .sorted()
                        .into_iter()
                        .map(|p| {
                            let approx = result.approx_supports.contains(&p.items);
                            let items = p.items.items().iter().map(|i| i.0).collect();
                            (items, p.support, approx)
                        })
                        .collect();
                    patterns.sort();
                    Response::Ok(Reply::Mine {
                        epoch: snap.epoch(),
                        rows: snap.rows(),
                        patterns,
                    })
                }
                Err(e) => Response::Err(format!("mine failed: {e}")),
            },
            Request::Probe { row } => match self.probe(*row) {
                Ok(txn) => Response::Ok(Reply::Probe {
                    txn: txn.map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect())),
                }),
                Err(e) => Response::Err(format!("probe failed: {e}")),
            },
            Request::Stats => Response::Ok(Reply::Stats {
                json: self.stats_json(),
            }),
            Request::Shutdown => {
                self.begin_drain();
                Response::Ok(Reply::ShuttingDown)
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.join();
    }
}

/// The committer thread: drain → coalesce → one group commit → fan
/// receipts back out.
fn committer_loop(
    shared: &SharedDeployment,
    metrics: &ServerMetrics,
    draining: &AtomicBool,
    rx: &mpsc::Receiver<IngestJob>,
    batch_max: usize,
) {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if draining.load(Ordering::Acquire) {
                    // Nothing queued for a full tick while draining: done.
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut jobs = vec![first];
        let mut total = jobs[0].txns.len();
        while total < batch_max {
            match rx.try_recv() {
                Ok(job) => {
                    total += job.txns.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        metrics
            .queue_depth
            .fetch_sub(jobs.len() as u64, Ordering::Relaxed);

        let mut txns = Vec::with_capacity(total);
        for job in &jobs {
            txns.extend(job.txns.iter().cloned());
        }
        let start = Instant::now();
        match shared.commit(&txns) {
            Ok(receipt) => {
                let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                metrics.commit_us.record(us);
                metrics.batch_size.record(txns.len() as u64);
                let mut row = receipt.rows.start;
                for job in jobs {
                    let n = job.txns.len() as u64;
                    // The producer may have timed out and gone; ignore.
                    job.reply.try_send(Ok((row, n, receipt.epoch))).ok();
                    row += n;
                }
            }
            Err(e) => {
                let msg = format!("group commit failed: {e}");
                for job in jobs {
                    job.reply.try_send(Err(msg.clone())).ok();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_storage::diskbbs::DiskDeployment;
    use std::path::PathBuf;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_engine_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn cfg() -> ServerConfig {
        ServerConfig {
            cache_pages: 128,
            queue_capacity: 8,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn insert_then_count_probe_mine() {
        let b = base("basic");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");

        let txns: Vec<Transaction> = (0..20)
            .map(|i| {
                Transaction::new(
                    i,
                    Itemset::from_values(if i % 2 == 0 { &[1, 2] } else { &[1, 3] }),
                )
            })
            .collect();
        match engine.insert(txns) {
            InsertOutcome::Committed {
                first_row,
                appended,
                epoch,
            } => {
                assert_eq!((first_row, appended), (0, 20));
                assert!(epoch >= 1);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }

        let (support, snap) = engine.count(&[1]).expect("count");
        assert_eq!(support, 20);
        assert_eq!(snap.rows(), 20);

        let probed = engine.probe(3).expect("probe").expect("present");
        assert_eq!(probed.tid.0, 3);
        assert_eq!(engine.probe(20).expect("probe"), None);

        let (result, _) = engine
            .mine(Scheme::Dfp, SupportThreshold::Count(10), 2)
            .expect("mine");
        assert_eq!(result.patterns.support(&Itemset::from_values(&[1, 2])), Some(10));
        assert_eq!(result.patterns.support(&Itemset::from_values(&[1])), Some(20));
    }

    #[test]
    fn handle_dispatches_and_records_metrics() {
        let b = base("handle");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");

        assert_eq!(engine.handle(&Request::Ping), Response::Ok(Reply::Pong));
        let resp = engine.handle(&Request::Insert {
            txns: vec![(0, vec![4, 5]), (1, vec![4])],
        });
        assert!(matches!(resp, Response::Ok(Reply::Insert { appended: 2, .. })));
        let resp = engine.handle(&Request::Count { items: vec![4] });
        match resp {
            Response::Ok(Reply::Count { support, rows, .. }) => {
                assert_eq!((support, rows), (2, 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let m = engine.metrics();
        assert_eq!(m.count.requests.load(Ordering::Relaxed), 1);
        assert_eq!(m.insert.requests.load(Ordering::Relaxed), 1);
        assert_eq!(m.count.latency_us.count(), 1);

        let resp = engine.handle(&Request::Stats);
        match resp {
            Response::Ok(Reply::Stats { json }) => {
                assert!(json.contains("\"rows\":2"));
                assert!(json.contains("\"commits\":1"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn draining_rejects_new_inserts_but_commits_queued() {
        let b = base("drain");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let outcome = engine.insert(vec![Transaction::new(0, Itemset::from_values(&[9]))]);
        assert!(matches!(outcome, InsertOutcome::Committed { .. }));
        engine.begin_drain();
        let outcome = engine.insert(vec![Transaction::new(1, Itemset::from_values(&[9]))]);
        assert_eq!(outcome, InsertOutcome::Overloaded);
        assert!(engine.metrics().overloaded.load(Ordering::Relaxed) >= 1);
        engine.join();
        // Reads still serve after the drain.
        let (support, _) = engine.count(&[9]).expect("count");
        assert_eq!(support, 1);
    }

    #[test]
    fn group_commit_coalesces_concurrent_producers() {
        let b = base("coalesce");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let n_threads = 8;
        let per = 25u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let txns: Vec<Transaction> = (0..per)
                    .map(|i| Transaction::new(t * per + i, Itemset::from_values(&[7])))
                    .collect();
                engine.insert(txns)
            }));
        }
        let mut rows_seen = Vec::new();
        for h in handles {
            match h.join().expect("join") {
                InsertOutcome::Committed {
                    first_row,
                    appended,
                    ..
                } => {
                    assert_eq!(appended, per);
                    rows_seen.push(first_row);
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
        // Receipts tile the row space exactly: disjoint consecutive ranges.
        rows_seen.sort_unstable();
        for (i, &r) in rows_seen.iter().enumerate() {
            assert_eq!(r, i as u64 * per);
        }
        let (support, snap) = engine.count(&[7]).expect("count");
        assert_eq!(support, n_threads * per);
        assert_eq!(snap.rows(), n_threads * per);
        // Fewer commits than producers proves coalescing happened — or at
        // worst equal, when the committer never found a second job waiting.
        let profile_commits = engine.metrics().batch_size.count();
        assert!(profile_commits <= n_threads);
    }
}
