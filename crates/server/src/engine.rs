//! The request engine: snapshot-isolated reads, group-committed writes.
//!
//! An [`Engine`] wraps a [`SharedDeployment`] with the server's two data
//! paths:
//!
//! * **Write path** — [`Engine::insert_with_id`] does not touch the
//!   files.  It enqueues the batch on a **bounded** MPSC queue
//!   ([`ServerConfig::queue_capacity`]) and waits for a receipt.  A
//!   dedicated *committer* thread drains the queue, coalescing jobs that
//!   arrive within [`ServerConfig::commit_window`] of the first (up to
//!   [`ServerConfig::batch_max`] transactions) into **one** group commit:
//!   one slice/heap append pass, one fsync set, one commit record —
//!   however many producers are blocked on it.  A full queue is answered
//!   with the typed [`Response::Overloaded`], never by blocking the
//!   connection handler forever; a receipt that takes longer than
//!   [`ServerConfig::insert_timeout`] returns a timeout error while the
//!   commit itself still completes.
//! * **Read path** — [`Engine::count`], [`Engine::probe`] and
//!   [`Engine::mine`] run against the latest published [`Snapshot`]:
//!   concurrent with ingest, never observing a half-appended batch
//!   (see `bbs_storage::snapshot` for the isolation protocol).  `mine`
//!   materialises the snapshot in memory first and mines offline, so a
//!   long mine never delays commits.
//!
//! # Exactly-once ingest
//!
//! Every insert carries a client-chosen request ID (`0` opts out).  The
//! committer consults the deployment's durable dedup window *before*
//! appending: a request ID whose batch already committed — in a previous
//! run of the process, or earlier in this very group commit — is answered
//! with the **original** row receipt and `deduped = true` instead of
//! appending again.  This is what makes client retries safe: a reply lost
//! to a timeout, a dropped connection, or a server crash *after* the
//! commit record hit disk turns into a dedup hit on retry, never a
//! duplicate batch.
//!
//! [`Engine::handle`] is the single dispatcher the transport layer calls:
//! request in, response out, metrics recorded — it is transport-agnostic
//! and unit-testable without a socket.

use crate::client::Client;
use crate::metrics::ServerMetrics;
use crate::proto::{maintain_action, LogEntry, Reply, Request, Response};
use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_storage::snapshot::{SharedDeployment, Snapshot};
use bbs_storage::{deployment_paths, is_disk_full, read_entries};
use bbs_storage::DEFAULT_DEDUP_WINDOW;
use bbs_tdb::{FrequentPatternMiner, Itemset, SupportThreshold, Transaction};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most log entries one `replicate` response carries, regardless of what
/// the follower asked for.
const REPLICATE_MAX_ENTRIES: usize = 512;

/// Byte budget for the entries of one `replicate` response (the wire
/// encoding adds a small constant per entry, so this stays comfortably
/// under [`crate::proto::MAX_FRAME`]).
const REPLICATE_MAX_BYTES: usize = 8 << 20;

/// Admission cap for one `count_many` batch, measured in total item
/// values across the batch (an empty itemset still charges one unit).
/// The unit of work a batched count admits is its slice-AND operands,
/// not its frame count: a batch of K itemsets costs what K independent
/// counts would, so it must be charged as K counts' worth of work — one
/// giant frame cannot sneak unbounded scanning past admission control.
pub(crate) const COUNT_MANY_MAX_WORK: usize = 1 << 16;

/// How many distinct epochs the snapshot pin table holds.  Pinning a
/// fifth epoch evicts the oldest; a coordinator that then asks for the
/// evicted epoch gets a typed `stale pin` error and simply re-pins.
const MAX_PINS: usize = 4;

/// Row cap per `Rows` reply, regardless of the requested limit.
const ROWS_MAX_PER_REPLY: usize = 8192;

/// Seed base for maintenance FPR probes; each probe perturbs it with a
/// running counter so successive probes sample fresh (but reproducible)
/// item pairs.
const FPR_SEED: u64 = 0xBB5_F9A0_11D5;

/// Byte budget for the transactions of one `Rows` reply (the wire
/// encoding stays comfortably under [`crate::proto::MAX_FRAME`]).
const ROWS_MAX_BYTES: usize = 8 << 20;

/// Resolves a requested thread count: `0` (or absent, mapped to `0` by
/// callers) means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Which side of replication this server is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes; its replication log is the source of truth.
    Primary,
    /// Pulls the primary's log and applies it through the normal commit
    /// path; serves reads, rejects writes with `NotPrimary`.
    Follower {
        /// The primary's address, echoed in `NotPrimary` rejections so a
        /// client knows where to go.
        primary: String,
    },
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Signature width in bits for a freshly created deployment (must
    /// match the on-disk width when opening an existing one).
    pub width: usize,
    /// Page-cache capacity per file handle.
    pub cache_pages: usize,
    /// Bounded ingest queue: jobs beyond this are answered `Overloaded`.
    pub queue_capacity: usize,
    /// Maximum transactions coalesced into one group commit.
    pub batch_max: usize,
    /// Default worker threads for `mine` requests that ask for `0`.
    pub mine_threads: usize,
    /// How long an insert waits for its commit receipt before reporting a
    /// timeout (the commit itself still lands).
    pub insert_timeout: Duration,
    /// How long the committer keeps gathering jobs after the first one
    /// before committing the batch.  `Duration::ZERO` commits every job
    /// on its own — one batch per commit, no coalescing.
    pub commit_window: Duration,
    /// Request IDs remembered for exactly-once ingest (per deployment,
    /// persisted across restarts).
    pub dedup_window: usize,
    /// When set, start as a follower of the primary at this TCP address:
    /// pull its replication log, apply through the commit path, reject
    /// writes with `NotPrimary`.
    pub follow: Option<String>,
    /// How often a follower polls the primary once caught up (also the
    /// retry tick while the primary is unreachable).
    pub poll_interval: Duration,
    /// A follower that cannot reach its primary for this long promotes
    /// itself.  `None` (the default) promotes only on request.
    pub auto_promote: Option<Duration>,
    /// When set, a background thread runs the maintenance policy
    /// ([`maintain_action::AUTO`]) at this interval: probe the FPR, then
    /// compact/fold per the thresholds below.  `None` (the default)
    /// leaves maintenance to explicit `MAINTAIN` requests.
    pub maintain_interval: Option<Duration>,
    /// Measured FPR above this triggers a compaction that re-hashes at
    /// double the width (tombstones are dropped in the same pass).
    pub fpr_hi: f64,
    /// Measured FPR below this marks the width over-provisioned: the
    /// policy folds it in half (down to [`ServerConfig::min_width`]).
    pub fpr_lo: f64,
    /// Item-pair probes per FPR measurement (each costs one `count_many`
    /// batch plus one live-row heap scan).
    pub fpr_samples: usize,
    /// Tombstoned fraction of the file above which the policy compacts
    /// (at the current width) to reclaim the dead rows.
    pub dead_fraction_hi: f64,
    /// Folds never shrink the width below this.
    pub min_width: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            width: 64,
            cache_pages: 1024,
            queue_capacity: 256,
            batch_max: 4096,
            mine_threads: 0,
            insert_timeout: Duration::from_secs(30),
            commit_window: Duration::from_millis(50),
            dedup_window: DEFAULT_DEDUP_WINDOW,
            follow: None,
            poll_interval: Duration::from_millis(50),
            auto_promote: None,
            maintain_interval: None,
            fpr_hi: 0.25,
            fpr_lo: 0.002,
            fpr_samples: 64,
            dead_fraction_hi: 0.5,
            min_width: 16,
        }
    }
}

/// One queued ingest batch and the channel its outcome goes back on.
struct IngestJob {
    req_id: u64,
    txns: Vec<Transaction>,
    reply: SyncSender<InsertOutcome>,
}

/// The outcome of [`Engine::insert_with_id`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Batch is durable (now, or — when `deduped` — in some earlier
    /// commit this request ID already landed in).
    Committed {
        /// First row the batch occupies.
        first_row: u64,
        /// Rows appended.
        appended: u64,
        /// Epoch whose snapshot shows the batch.
        epoch: u64,
        /// True when the receipt came from the exactly-once window
        /// instead of a fresh append (the batch was already durable).
        deduped: bool,
    },
    /// The bounded queue was full (or the server is draining).
    Overloaded,
    /// The disk is out of space: nothing was appended.  Reads keep
    /// serving; retrying with the same request ID once space returns is
    /// safe.
    DiskFull,
    /// This server is a follower: writes go to the named primary.
    NotPrimary(String),
    /// The commit failed or its receipt did not arrive in time.
    Failed(String),
}

/// The server's request engine (transport-agnostic).
pub struct Engine {
    shared: Arc<SharedDeployment>,
    metrics: Arc<ServerMetrics>,
    ingest: SyncSender<IngestJob>,
    committer: Mutex<Option<JoinHandle<()>>>,
    draining: Arc<AtomicBool>,
    role: Arc<RwLock<Role>>,
    applier: Mutex<Option<JoinHandle<()>>>,
    applier_stop: Arc<AtomicBool>,
    cfg: ServerConfig,
    /// Bounded pin table for the remote-shard read contract: epoch →
    /// snapshot, oldest evicted beyond [`MAX_PINS`].
    pins: Mutex<Vec<(u64, Arc<Snapshot>)>>,
    /// Identity of the item hasher this deployment was opened with
    /// (reported in `SnapshotPinned` so a coordinator can refuse a
    /// mismatched shard).
    hasher_id: String,
    maintainer: Mutex<Option<JoinHandle<()>>>,
    maintain_stop: Arc<AtomicBool>,
    /// Monotone probe counter perturbing the FPR seed per measurement.
    fpr_probes: AtomicU64,
}

impl Engine {
    /// Opens (creating or crash-recovering) the deployment at `base` with
    /// the default MD5 Bloom hasher and spawns the committer thread.
    pub fn open(base: &Path, cfg: ServerConfig) -> io::Result<Arc<Engine>> {
        let hasher: Arc<dyn ItemHasher> = Arc::new(Md5BloomHasher::new(4));
        Engine::open_with(base, cfg, hasher)
    }

    /// [`Engine::open`] with an explicit hash family.
    pub fn open_with(
        base: &Path,
        cfg: ServerConfig,
        hasher: Arc<dyn ItemHasher>,
    ) -> io::Result<Arc<Engine>> {
        let hasher_id = hasher.id();
        let shared = SharedDeployment::open(base, cfg.width, hasher, cfg.cache_pages)?;
        Engine::build(shared, cfg, hasher_id)
    }

    /// Builds an engine over an already-open [`SharedDeployment`] (the
    /// fault-injection tests open theirs with
    /// [`SharedDeployment::open_faulty`]).  The hasher identity reported
    /// to coordinators is the default family's; use [`Engine::open_with`]
    /// when a custom hasher matters.
    pub fn with_shared(shared: Arc<SharedDeployment>, cfg: ServerConfig) -> io::Result<Arc<Engine>> {
        let hasher_id = Md5BloomHasher::new(4).id();
        Engine::build(shared, cfg, hasher_id)
    }

    fn build(
        shared: Arc<SharedDeployment>,
        cfg: ServerConfig,
        hasher_id: String,
    ) -> io::Result<Arc<Engine>> {
        shared.set_dedup_window(cfg.dedup_window);
        let metrics = Arc::new(ServerMetrics::new());
        let (tx, rx) = mpsc::sync_channel::<IngestJob>(cfg.queue_capacity);
        let draining = Arc::new(AtomicBool::new(false));
        let committer = {
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            let draining = Arc::clone(&draining);
            let batch_max = cfg.batch_max.max(1);
            let window = cfg.commit_window;
            std::thread::Builder::new()
                .name("bbs-committer".into())
                .spawn(move || committer_loop(&shared, &metrics, &draining, &rx, batch_max, window))?
        };
        let role = Arc::new(RwLock::new(match &cfg.follow {
            Some(primary) => Role::Follower {
                primary: primary.clone(),
            },
            None => Role::Primary,
        }));
        let applier_stop = Arc::new(AtomicBool::new(false));
        let applier = match &cfg.follow {
            Some(primary) => {
                let shared = Arc::clone(&shared);
                let metrics = Arc::clone(&metrics);
                let role = Arc::clone(&role);
                let stop = Arc::clone(&applier_stop);
                let primary = primary.clone();
                let poll = cfg.poll_interval;
                let auto = cfg.auto_promote;
                Some(
                    std::thread::Builder::new()
                        .name("bbs-applier".into())
                        .spawn(move || {
                            follower_loop(&shared, &metrics, &role, &stop, &primary, poll, auto)
                        })?,
                )
            }
            None => None,
        };
        let maintain_interval = cfg.maintain_interval;
        let engine = Arc::new(Engine {
            shared,
            metrics,
            ingest: tx,
            committer: Mutex::new(Some(committer)),
            draining,
            role,
            applier: Mutex::new(applier),
            applier_stop,
            cfg,
            pins: Mutex::new(Vec::new()),
            hasher_id,
            maintainer: Mutex::new(None),
            maintain_stop: Arc::new(AtomicBool::new(false)),
            fpr_probes: AtomicU64::new(0),
        });
        if let Some(interval) = maintain_interval {
            // The thread holds only a weak handle: dropping the last
            // strong `Arc<Engine>` (whose Drop joins it) must not race a
            // self-keeping cycle.
            let weak = Arc::downgrade(&engine);
            let stop = Arc::clone(&engine.maintain_stop);
            let handle = std::thread::Builder::new()
                .name("bbs-maintainer".into())
                .spawn(move || maintenance_loop(&weak, &stop, interval))?;
            *engine
                .maintainer
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(handle);
        }
        Ok(engine)
    }

    /// The engine's metrics (shared with the transport layer).
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The deployment's current slice width in bits. Folds halve it and
    /// widened compactions grow it, so this tracks the live files rather
    /// than the width the server was configured with.
    pub fn width(&self) -> usize {
        self.shared.width()
    }

    /// The latest published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.snapshot()
    }

    /// The identity string of this deployment's item hasher (e.g.
    /// `md5/4`), as reported in `SnapshotPinned` replies.
    pub fn hasher_id(&self) -> &str {
        &self.hasher_id
    }

    /// Pins the latest snapshot in the bounded pin table and returns it.
    /// Re-pinning an already-pinned epoch refreshes its slot; beyond
    /// [`MAX_PINS`] distinct epochs the oldest pin is evicted.
    pub fn pin_snapshot(&self) -> Arc<Snapshot> {
        let snap = self.shared.snapshot();
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        pins.retain(|(epoch, _)| *epoch != snap.epoch());
        pins.push((snap.epoch(), Arc::clone(&snap)));
        while pins.len() > MAX_PINS {
            pins.remove(0);
            self.metrics.pin_evictions.fetch_add(1, Ordering::Relaxed);
        }
        snap
    }

    /// Looks up a pinned snapshot by epoch.  A hit refreshes the pin's
    /// recency (the table evicts least-recently-used, so an epoch a
    /// coordinator keeps reading outlives bursts of fresh pins).
    pub fn pinned(&self, epoch: u64) -> Option<Arc<Snapshot>> {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let at = pins.iter().position(|(e, _)| *e == epoch)?;
        let entry = pins.remove(at);
        let snap = Arc::clone(&entry.1);
        pins.push(entry);
        Some(snap)
    }

    /// Drops every pin: called after a compaction/fold, whose file swap
    /// makes pre-swap snapshots unservable (their row clamps and width no
    /// longer describe the live files).  A coordinator holding one gets
    /// the typed `stale pin` error and re-pins.
    fn invalidate_pins(&self) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        self.metrics
            .pin_evictions
            .fetch_add(pins.len() as u64, Ordering::Relaxed);
        pins.clear();
    }

    /// A `stale pin` miss: record it and render the typed error the
    /// caller re-pins on.
    fn stale_pin(&self, epoch: u64) -> Response {
        self.metrics.stale_pins.fetch_add(1, Ordering::Relaxed);
        Response::Err(format!(
            "stale pin: epoch {epoch} is not in the pin table (re-pin and retry)"
        ))
    }

    /// True once [`Engine::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Stops admitting inserts; queued batches still commit.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Waits for the committer (and, on a follower, the applier) to
    /// drain and exit.  Idempotent; implies [`Engine::begin_drain`].
    pub fn join(&self) {
        self.begin_drain();
        self.maintain_stop.store(true, Ordering::Release);
        let handle = self
            .maintainer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.join().ok();
        }
        self.applier_stop.store(true, Ordering::Release);
        let handle = self
            .applier
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.join().ok();
        }
        let handle = self
            .committer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.join().ok();
        }
    }

    /// This server's current replication role.
    pub fn role(&self) -> Role {
        self.role.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Promotes this server to primary: stops the applier, flips the
    /// role, and starts accepting writes.  Idempotent — promoting a
    /// primary is a no-op.  Returns the epoch and row count the new
    /// primary starts serving from.
    pub fn promote(&self) -> (u64, u64) {
        self.applier_stop.store(true, Ordering::Release);
        let was_follower = {
            let mut role = self.role.write().unwrap_or_else(|e| e.into_inner());
            match &*role {
                Role::Follower { .. } => {
                    *role = Role::Primary;
                    true
                }
                Role::Primary => false,
            }
        };
        if was_follower {
            self.metrics.promotions.fetch_add(1, Ordering::Relaxed);
        }
        // Join outside the role lock: the applier may be mid-poll.
        let handle = self
            .applier
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(h) = handle {
            h.join().ok();
        }
        let snap = self.shared.snapshot();
        (snap.epoch(), snap.rows())
    }

    /// [`Engine::insert_with_id`] without a request ID (no dedup).
    pub fn insert(&self, txns: Vec<Transaction>) -> InsertOutcome {
        self.insert_with_id(0, txns)
    }

    /// Submits a batch through the bounded queue and waits for its group
    /// commit receipt.  `req_id != 0` enrolls the batch in the
    /// exactly-once window: retrying the same ID after a lost reply
    /// returns the original receipt instead of appending again.
    pub fn insert_with_id(&self, req_id: u64, txns: Vec<Transaction>) -> InsertOutcome {
        if txns.is_empty() {
            // Nothing to commit; answer from the current epoch.
            let snap = self.shared.snapshot();
            return InsertOutcome::Committed {
                first_row: snap.rows(),
                appended: 0,
                epoch: snap.epoch(),
                deduped: false,
            };
        }
        if let Role::Follower { primary } = &*self.role.read().unwrap_or_else(|e| e.into_inner()) {
            self.metrics.not_primary.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::NotPrimary(primary.clone());
        }
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::Overloaded;
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = IngestJob {
            req_id,
            txns,
            reply: reply_tx,
        };
        match self.ingest.try_send(job) {
            Ok(()) => {
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                return InsertOutcome::Overloaded;
            }
        }
        match reply_rx.recv_timeout(self.cfg.insert_timeout) {
            Ok(outcome) => outcome,
            Err(_) => InsertOutcome::Failed(format!(
                "commit receipt not received within {:?} (the batch may still commit)",
                self.cfg.insert_timeout
            )),
        }
    }

    /// `CountItemSet` against the latest snapshot.
    pub fn count(&self, items: &[u32]) -> io::Result<(u64, Arc<Snapshot>)> {
        let snap = self.shared.snapshot();
        let support = snap.count(&Itemset::from_values(items))?;
        Ok((support, snap))
    }

    /// Batched `CountItemSet`: every itemset is answered from the **same**
    /// snapshot via the shared-scan executor (one walk of the selected
    /// slice chunks serves the whole batch; see [`Snapshot::count_many`]).
    /// Supports come back in request order, identical to per-op counting.
    pub fn count_many(&self, itemsets: &[Vec<u32>]) -> io::Result<(Vec<u64>, Arc<Snapshot>)> {
        let snap = self.shared.snapshot();
        let sets: Vec<Itemset> = itemsets
            .iter()
            .map(|items| Itemset::from_values(items))
            .collect();
        let supports = snap.count_many(&sets)?;
        Ok((supports, snap))
    }

    /// Probes one row of the latest snapshot.
    pub fn probe(&self, row: u64) -> io::Result<Option<Transaction>> {
        self.shared.snapshot().probe(row)
    }

    /// Mines the latest snapshot offline: loads it into memory (the only
    /// part that contends with commits), then runs the in-memory miner.
    pub fn mine(
        &self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: usize,
    ) -> io::Result<(bbs_tdb::MineResult, Arc<Snapshot>)> {
        let snap = self.shared.snapshot();
        let (db, bbs) = snap.load()?;
        let threads = if threads == 0 {
            resolve_threads(self.cfg.mine_threads)
        } else {
            threads
        };
        let mut miner = bbs_core::BbsMiner::with_index(scheme, bbs).with_threads(threads);
        let result = miner.mine(&db, threshold);
        Ok((result, snap))
    }

    /// Tombstone-deletes every live transaction holding one of `tids`,
    /// with the same exactly-once contract as inserts: a nonzero
    /// `req_id` whose delete already committed is answered from the
    /// dedup window (`deduped = true`) without re-resolving.
    pub fn delete_tids(&self, req_id: u64, tids: &[u64]) -> Response {
        if let Role::Follower { primary } = &*self.role.read().unwrap_or_else(|e| e.into_inner()) {
            self.metrics.not_primary.fetch_add(1, Ordering::Relaxed);
            return Response::NotPrimary(primary.clone());
        }
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded;
        }
        if req_id != 0 {
            match self.shared.dedup_lookup(req_id) {
                Ok(Some(r)) => {
                    self.metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    return Response::Ok(Reply::Delete {
                        deleted: r.appended,
                        epoch: self.shared.epoch(),
                        deduped: true,
                    });
                }
                Ok(None) => {}
                Err(e) => return Response::Err(format!("dedup lookup failed: {e}")),
            }
        }
        match self.shared.delete_tids(tids, req_id) {
            Ok(r) => Response::Ok(Reply::Delete {
                deleted: r.deleted,
                epoch: r.epoch,
                deduped: false,
            }),
            Err(e) if is_disk_full(&e) => {
                self.metrics.disk_full.fetch_add(1, Ordering::Relaxed);
                Response::DiskFull
            }
            Err(e) => Response::Err(format!("delete failed: {e}")),
        }
    }

    /// Measures the live FPR against the latest snapshot and refreshes
    /// the `last_measured_fpr` gauge.  `samples = 0` uses the configured
    /// default.
    pub fn probe_fpr(&self, samples: usize) -> io::Result<f64> {
        let samples = if samples == 0 {
            self.cfg.fpr_samples
        } else {
            samples
        };
        let seed = FPR_SEED ^ self.fpr_probes.fetch_add(1, Ordering::Relaxed);
        let fpr = self.shared.snapshot().measure_fpr(samples, seed)?;
        self.metrics
            .last_measured_fpr_bits
            .store(fpr.to_bits(), Ordering::Relaxed);
        Ok(fpr)
    }

    /// One maintenance request: probe, compact, fold, or run the policy.
    /// Compactions and folds are writer-side operations, so a follower
    /// rejects them with `NotPrimary` (its files must track the
    /// primary's); probing and `AUTO` (which degrades to a probe on a
    /// follower) are always allowed.
    fn serve_maintain(&self, action: u8, arg: u64) -> Response {
        let is_follower_reject = |engine: &Engine| -> Option<Response> {
            if let Role::Follower { primary } =
                &*engine.role.read().unwrap_or_else(|e| e.into_inner())
            {
                engine.metrics.not_primary.fetch_add(1, Ordering::Relaxed);
                return Some(Response::NotPrimary(primary.clone()));
            }
            None
        };
        match action {
            maintain_action::PROBE_FPR => match self.probe_fpr(arg as usize) {
                Ok(fpr) => self.maintain_reply(maintain_action::PROBE_FPR, fpr),
                Err(e) => Response::Err(format!("fpr probe failed: {e}")),
            },
            maintain_action::COMPACT => {
                if let Some(reject) = is_follower_reject(self) {
                    return reject;
                }
                let fpr = match self.probe_fpr(0) {
                    Ok(fpr) => fpr,
                    Err(e) => return Response::Err(format!("fpr probe failed: {e}")),
                };
                let target = if arg == 0 { None } else { Some(arg as usize) };
                match self.shared.compact(target) {
                    Ok(_) => {
                        self.metrics
                            .maintenance_compactions
                            .fetch_add(1, Ordering::Relaxed);
                        self.invalidate_pins();
                        self.maintain_reply(maintain_action::COMPACT, fpr)
                    }
                    Err(e) => Response::Err(format!("compaction failed: {e}")),
                }
            }
            maintain_action::FOLD => {
                if let Some(reject) = is_follower_reject(self) {
                    return reject;
                }
                let fpr = match self.probe_fpr(0) {
                    Ok(fpr) => fpr,
                    Err(e) => return Response::Err(format!("fpr probe failed: {e}")),
                };
                match self.shared.fold() {
                    Ok(_) => {
                        self.metrics
                            .maintenance_folds
                            .fetch_add(1, Ordering::Relaxed);
                        self.invalidate_pins();
                        self.maintain_reply(maintain_action::FOLD, fpr)
                    }
                    Err(e) => Response::Err(format!("fold failed: {e}")),
                }
            }
            maintain_action::AUTO => match self.maintain_auto(arg as usize) {
                Ok((taken, fpr)) => self.maintain_reply(taken, fpr),
                Err(e) => Response::Err(format!("maintenance failed: {e}")),
            },
            k => Response::Err(format!("unknown maintenance action {k}")),
        }
    }

    fn maintain_reply(&self, action_taken: u8, fpr: f64) -> Response {
        let snap = self.shared.snapshot();
        Response::Ok(Reply::Maintain {
            action_taken,
            width: self.shared.width() as u32,
            live_rows: snap.live_rows(),
            deleted_rows: snap.deleted_rows(),
            fpr_bits: fpr.to_bits(),
        })
    }

    /// One evaluation of the maintenance policy.  Returns the action it
    /// took (`PROBE_FPR` when it changed nothing) and the FPR measured
    /// *before* acting.  In priority order:
    ///
    /// 1. FPR above `fpr_hi` → compact re-hashing at **double** the
    ///    width, which both drops tombstones and pulls the collision
    ///    rate back down.
    /// 2. Tombstoned fraction above `dead_fraction_hi` → compact at the
    ///    current width to reclaim the dead rows.
    /// 3. FPR below `fpr_lo` with width foldable → fold, halving the
    ///    index's footprint while staying under the ceiling.
    ///
    /// A follower only probes: its files must track the primary's.
    pub fn maintain_auto(&self, samples: usize) -> io::Result<(u8, f64)> {
        self.metrics
            .maintenance_runs
            .fetch_add(1, Ordering::Relaxed);
        let fpr = self.probe_fpr(samples)?;
        if !matches!(self.role(), Role::Primary) {
            return Ok((maintain_action::PROBE_FPR, fpr));
        }
        let snap = self.shared.snapshot();
        let width = self.shared.width();
        if fpr > self.cfg.fpr_hi && snap.live_rows() > 0 {
            self.shared.compact(Some(width * 2))?;
            self.metrics
                .maintenance_compactions
                .fetch_add(1, Ordering::Relaxed);
            self.invalidate_pins();
            return Ok((maintain_action::COMPACT, fpr));
        }
        let rows = snap.rows();
        if rows > 0 && snap.deleted_rows() as f64 / rows as f64 >= self.cfg.dead_fraction_hi {
            self.shared.compact(None)?;
            self.metrics
                .maintenance_compactions
                .fetch_add(1, Ordering::Relaxed);
            self.invalidate_pins();
            return Ok((maintain_action::COMPACT, fpr));
        }
        if fpr < self.cfg.fpr_lo
            && width.is_multiple_of(2)
            && width / 2 >= self.cfg.min_width
            && snap.live_rows() > 0
        {
            self.shared.fold()?;
            self.metrics
                .maintenance_folds
                .fetch_add(1, Ordering::Relaxed);
            self.invalidate_pins();
            return Ok((maintain_action::FOLD, fpr));
        }
        Ok((maintain_action::PROBE_FPR, fpr))
    }

    /// Renders the stats document: wire metrics plus engine/storage state.
    pub fn stats_json(&self) -> String {
        let snap = self.shared.snapshot();
        let profile = self.shared.writer_profile();
        let (role_name, primary_addr) = match self.role() {
            Role::Primary => ("primary", String::new()),
            Role::Follower { primary } => ("follower", primary),
        };
        let extra = vec![
            format!("\"epoch\":{}", snap.epoch()),
            format!("\"rows\":{}", snap.rows()),
            format!("\"role\":\"{role_name}\""),
            format!("\"primary_addr\":\"{primary_addr}\""),
            format!("\"committed_seq\":{}", self.shared.committed_seq()),
            format!("\"queue_capacity\":{}", self.cfg.queue_capacity),
            format!("\"batch_max\":{}", self.cfg.batch_max),
            format!(
                "\"commit_window_ms\":{}",
                self.cfg.commit_window.as_millis()
            ),
            format!("\"dedup_window\":{}", self.cfg.dedup_window),
            format!("\"draining\":{}", self.is_draining()),
            format!("\"writer_poisoned\":{}", self.shared.writer_poisoned()),
            format!("\"writer_heals\":{}", self.shared.writer_heals()),
            format!("\"width\":{}", self.shared.width()),
            format!("\"live_rows\":{}", snap.live_rows()),
            format!("\"deleted_rows\":{}", snap.deleted_rows()),
            format!("\"commits\":{}", profile.commits),
            format!("\"appended\":{}", profile.appended),
            format!("\"committed_rows\":{}", profile.committed_rows),
            format!("\"deletes\":{}", profile.deletes),
            format!(
                "\"writer_pager\":{{\"reads\":{},\"writes\":{},\"checksum_reads\":{},\"checksum_writes\":{}}}",
                profile.pager.reads,
                profile.pager.writes,
                profile.pager.checksum_reads,
                profile.pager.checksum_writes
            ),
            format!(
                "\"writer_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{}}}",
                profile.cache.hits, profile.cache.misses, profile.cache.evictions
            ),
            format!(
                "\"writer_hot\":{{\"pinned\":{},\"hits\":{},\"decodes\":{},\"invalidations\":{}}}",
                profile.hot.pinned, profile.hot.hits, profile.hot.decodes, profile.hot.invalidations
            ),
        ];
        self.metrics.to_json(&extra)
    }

    /// Executes one decoded request and produces its response, recording
    /// per-endpoint metrics.  [`Request::Shutdown`] only marks the engine
    /// draining — the transport layer watches [`Engine::is_draining`] and
    /// owns socket teardown.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let opcode = req.opcode();
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.requests.fetch_add(1, Ordering::Relaxed);
        }
        let resp = self.dispatch(req);
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.latency_us
                .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            if matches!(resp, Response::Err(_)) {
                ep.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Ok(Reply::Pong),
            Request::Count { items } => match self.count(items) {
                Ok((support, snap)) => Response::Ok(Reply::Count {
                    support,
                    epoch: snap.epoch(),
                    rows: snap.rows(),
                }),
                Err(e) => Response::Err(format!("count failed: {e}")),
            },
            Request::Insert { req_id, txns } => {
                let txns: Vec<Transaction> = txns
                    .iter()
                    .map(|(tid, items)| Transaction::new(*tid, Itemset::from_values(items)))
                    .collect();
                match self.insert_with_id(*req_id, txns) {
                    InsertOutcome::Committed {
                        first_row,
                        appended,
                        epoch,
                        deduped,
                    } => Response::Ok(Reply::Insert {
                        first_row,
                        appended,
                        epoch,
                        deduped,
                    }),
                    InsertOutcome::Overloaded => Response::Overloaded,
                    InsertOutcome::DiskFull => Response::DiskFull,
                    InsertOutcome::NotPrimary(primary) => Response::NotPrimary(primary),
                    InsertOutcome::Failed(msg) => Response::Err(msg),
                }
            }
            Request::Mine {
                scheme,
                threshold,
                threads,
            } => match self.mine(*scheme, *threshold, usize::from(*threads)) {
                Ok((result, snap)) => {
                    let mut patterns: Vec<(Vec<u32>, u64, bool)> = result
                        .patterns
                        .sorted()
                        .into_iter()
                        .map(|p| {
                            let approx = result.approx_supports.contains(&p.items);
                            let items = p.items.items().iter().map(|i| i.0).collect();
                            (items, p.support, approx)
                        })
                        .collect();
                    patterns.sort();
                    Response::Ok(Reply::Mine {
                        epoch: snap.epoch(),
                        rows: snap.rows(),
                        patterns,
                    })
                }
                Err(e) => Response::Err(format!("mine failed: {e}")),
            },
            Request::Probe { row } => match self.probe(*row) {
                Ok(txn) => Response::Ok(Reply::Probe {
                    txn: txn.map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect())),
                }),
                Err(e) => Response::Err(format!("probe failed: {e}")),
            },
            Request::Stats => Response::Ok(Reply::Stats {
                json: self.stats_json(),
            }),
            Request::Replicate {
                from_row,
                from_dseq,
                max_entries,
            } => self.serve_replicate(*from_row, *from_dseq, *max_entries),
            Request::Delete { req_id, tids } => self.delete_tids(*req_id, tids),
            Request::Maintain { action, arg } => self.serve_maintain(*action, *arg),
            Request::Promote => {
                let (epoch, rows) = self.promote();
                Response::Ok(Reply::Promoted { epoch, rows })
            }
            Request::Shutdown => {
                self.begin_drain();
                Response::Ok(Reply::ShuttingDown)
            }
            Request::CountMany { itemsets } => {
                // Admission by total work, not by frame: each itemset
                // charges its item count (empty ones charge 1 unit).
                let work: usize = itemsets.iter().map(|s| s.len().max(1)).sum();
                if work > COUNT_MANY_MAX_WORK {
                    self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Response::Overloaded;
                }
                self.metrics
                    .count_many_batch
                    .record(itemsets.len() as u64);
                match self.count_many(itemsets) {
                    Ok((supports, snap)) => Response::Ok(Reply::CountMany {
                        supports,
                        epoch: snap.epoch(),
                        rows: snap.rows(),
                    }),
                    Err(e) => Response::Err(format!("count_many failed: {e}")),
                }
            }
            Request::SnapshotPin => {
                let snap = self.pin_snapshot();
                Response::Ok(Reply::SnapshotPinned {
                    epoch: snap.epoch(),
                    rows: snap.rows(),
                    // The live width, not the configured one: a fold may
                    // have halved it since this engine was opened.
                    width: self.shared.width() as u32,
                    hasher: self.hasher_id.clone(),
                })
            }
            Request::CountManyAt {
                epoch,
                itemsets,
                tau,
            } => {
                let work: usize = itemsets.iter().map(|s| s.len().max(1)).sum();
                if work > COUNT_MANY_MAX_WORK {
                    self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Response::Overloaded;
                }
                let Some(snap) = self.pinned(*epoch) else {
                    return self.stale_pin(*epoch);
                };
                self.metrics
                    .count_many_batch
                    .record(itemsets.len() as u64);
                let sets: Vec<Itemset> = itemsets
                    .iter()
                    .map(|items| Itemset::from_values(items))
                    .collect();
                match snap.count_many_bounded(&sets, *tau) {
                    Ok(supports) => Response::Ok(Reply::CountsAt {
                        epoch: *epoch,
                        supports,
                    }),
                    Err(e) => Response::Err(format!("count_many_at failed: {e}")),
                }
            }
            Request::Rows { epoch, from, limit } => {
                let Some(snap) = self.pinned(*epoch) else {
                    return self.stale_pin(*epoch);
                };
                let cap = (*limit as usize).clamp(1, ROWS_MAX_PER_REPLY);
                let mut txns: Vec<(u64, Vec<u32>)> = Vec::new();
                let mut bytes = 0usize;
                let mut row = *from;
                while txns.len() < cap && bytes < ROWS_MAX_BYTES {
                    match snap.probe(row) {
                        Ok(Some(t)) => {
                            let items: Vec<u32> = t.items.items().iter().map(|i| i.0).collect();
                            bytes += 10 + 4 * items.len();
                            txns.push((t.tid.0, items));
                            row += 1;
                        }
                        Ok(None) => break,
                        Err(e) => return Response::Err(format!("rows read failed: {e}")),
                    }
                }
                Response::Ok(Reply::Rows {
                    total: snap.rows(),
                    txns,
                })
            }
        }
    }

    /// Serves one `replicate` pull from the on-disk log: entries covering
    /// `from_row` onward, capped by the server's entry/byte budgets and by
    /// the committed sequence number (synced-but-uncommitted debris is
    /// never streamed).
    ///
    /// Reading is stateless and lock-free with respect to the writer: the
    /// row count is read *before* the committed-seq cap, so every entry
    /// the cap admits is on disk by the time the file is scanned.
    fn serve_replicate(&self, from_row: u64, from_dseq: u64, max_entries: u32) -> Response {
        let rows = self.shared.snapshot().rows();
        let upto_seq = self.shared.committed_seq();
        let dseq = match self.shared.log_delete_entries() {
            Ok(d) => d,
            Err(e) => return Response::Err(format!("replication log read failed: {e}")),
        };
        if from_row > rows || from_dseq > dseq {
            // The follower's cursor is ahead of this primary: it streamed
            // from a pre-compaction log whose numbering no longer exists.
            // Served silently this would stall (or skip deletes) forever.
            return Response::Err(format!(
                "replication cursor (row {from_row}, delete entry {from_dseq}) is ahead of \
                 the primary ({rows} rows, {dseq} delete entries) — the log was rewritten; \
                 follower must resync from a fresh copy"
            ));
        }
        let paths = deployment_paths(self.shared.base());
        let cap = (max_entries as usize).clamp(1, REPLICATE_MAX_ENTRIES);
        let read = match read_entries(
            &paths.log,
            from_row,
            from_dseq,
            cap,
            REPLICATE_MAX_BYTES,
            upto_seq,
        ) {
            Ok(read) => read,
            Err(e) => return Response::Err(format!("replication log read failed: {e}")),
        };
        if let Some(first) = read.entries.first() {
            if first.first_row != from_row {
                return Response::Err(format!(
                    "replication log cannot serve row {from_row}: next entry starts at row {} \
                     (follower must resync from a fresh copy)",
                    first.first_row
                ));
            }
        } else if from_row < rows {
            return Response::Err(format!(
                "replication log no longer covers row {from_row} (log starts at row {}); \
                 follower must resync from a fresh copy",
                read.start_row
            ));
        }
        let entries: Vec<LogEntry> = read
            .entries
            .into_iter()
            .map(|e| {
                let txns = e
                    .txns
                    .iter()
                    .map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect()))
                    .collect();
                (e.first_row, txns, e.receipts, e.deletes)
            })
            .collect();
        Response::Ok(Reply::LogEntries { rows, entries })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.join();
    }
}

/// How the committer decided to answer one job of a batch.
enum Disposition {
    /// Freshly appended at `offset..offset+len` within this batch.
    Append { offset: u64, len: u64 },
    /// Already durable from an earlier commit: reply the stored receipt.
    Window { first_row: u64, appended: u64 },
    /// Duplicate of a job appended earlier in this same batch: reply that
    /// twin's rows.
    SameBatch { offset: u64, len: u64 },
    /// The dedup lookup itself failed; the job was not appended.
    LookupFailed(String),
}

/// The committer thread: drain → dedup → coalesce → one group commit →
/// fan receipts back out.
fn committer_loop(
    shared: &SharedDeployment,
    metrics: &ServerMetrics,
    draining: &AtomicBool,
    rx: &mpsc::Receiver<IngestJob>,
    batch_max: usize,
    window: Duration,
) {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if draining.load(Ordering::Acquire) {
                    // Nothing queued for a full tick while draining: done.
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let mut jobs = vec![first];
        let mut total = jobs[0].txns.len();
        if !window.is_zero() {
            // Keep gathering until the window closes or the batch fills.
            let deadline = Instant::now() + window;
            while total < batch_max {
                match rx.try_recv() {
                    Ok(job) => {
                        total += job.txns.len();
                        jobs.push(job);
                    }
                    Err(mpsc::TryRecvError::Disconnected) => break,
                    Err(mpsc::TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match rx.recv_timeout(deadline - now) {
                            Ok(job) => {
                                total += job.txns.len();
                                jobs.push(job);
                            }
                            Err(_) => break,
                        }
                    }
                }
            }
        }
        metrics
            .queue_depth
            .fetch_sub(jobs.len() as u64, Ordering::Relaxed);

        // Classify every job against the exactly-once window before
        // touching the files: retries are answered with their original
        // receipt, duplicates inside one batch collapse to a single
        // append.
        let mut txns = Vec::with_capacity(total);
        let mut receipts: Vec<(u64, u64, u64)> = Vec::new();
        let mut dispositions: Vec<Disposition> = Vec::with_capacity(jobs.len());
        let mut in_batch: HashMap<u64, (u64, u64)> = HashMap::new();
        for job in &jobs {
            if job.req_id != 0 {
                match shared.dedup_lookup(job.req_id) {
                    Ok(Some(r)) => {
                        metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
                        dispositions.push(Disposition::Window {
                            first_row: r.first_row,
                            appended: r.appended,
                        });
                        continue;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        dispositions
                            .push(Disposition::LookupFailed(format!("dedup lookup failed: {e}")));
                        continue;
                    }
                }
                if let Some(&(offset, len)) = in_batch.get(&job.req_id) {
                    metrics.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    dispositions.push(Disposition::SameBatch { offset, len });
                    continue;
                }
            }
            let offset = txns.len() as u64;
            let len = job.txns.len() as u64;
            txns.extend(job.txns.iter().cloned());
            if job.req_id != 0 {
                in_batch.insert(job.req_id, (offset, len));
                receipts.push((job.req_id, offset, len));
            }
            dispositions.push(Disposition::Append { offset, len });
        }

        if txns.is_empty() {
            // Every job was answered from the window; nothing to commit.
            let epoch = shared.epoch();
            for (job, disp) in jobs.into_iter().zip(dispositions) {
                job.reply.try_send(outcome_without_commit(disp, epoch)).ok();
            }
            continue;
        }

        let start = Instant::now();
        match shared.commit_with(&txns, &receipts) {
            Ok(receipt) => {
                let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                metrics.commit_us.record(us);
                metrics.batch_size.record(txns.len() as u64);
                for (job, disp) in jobs.into_iter().zip(dispositions) {
                    let outcome = match disp {
                        Disposition::Append { offset, len }
                        | Disposition::SameBatch { offset, len } => {
                            let deduped = matches!(disp, Disposition::SameBatch { .. });
                            InsertOutcome::Committed {
                                first_row: receipt.rows.start + offset,
                                appended: len,
                                epoch: receipt.epoch,
                                deduped,
                            }
                        }
                        Disposition::Window {
                            first_row,
                            appended,
                        } => InsertOutcome::Committed {
                            first_row,
                            appended,
                            epoch: receipt.epoch,
                            deduped: true,
                        },
                        Disposition::LookupFailed(msg) => InsertOutcome::Failed(msg),
                    };
                    // The producer may have timed out and gone; ignore.
                    job.reply.try_send(outcome).ok();
                }
            }
            Err(e) => {
                let disk_full = is_disk_full(&e);
                if disk_full {
                    metrics.disk_full.fetch_add(1, Ordering::Relaxed);
                }
                let msg = format!("group commit failed: {e}");
                let epoch = shared.epoch();
                for (job, disp) in jobs.into_iter().zip(dispositions) {
                    let outcome = match disp {
                        // Window hits were durable before this commit ever
                        // started: answer them regardless of its failure.
                        Disposition::Window { .. } | Disposition::LookupFailed(_) => {
                            outcome_without_commit(disp, epoch)
                        }
                        _ if disk_full => InsertOutcome::DiskFull,
                        _ => InsertOutcome::Failed(msg.clone()),
                    };
                    job.reply.try_send(outcome).ok();
                }
            }
        }
    }
}

/// Sleeps for `total`, waking early (in ~10 ms ticks) if `stop` flips —
/// so a promotion never waits out a full poll interval.
fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Acquire) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        std::thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// The follower's applier thread: pull the primary's replication log from
/// the local row count forward, apply each entry through the normal
/// commit path (receipts included, so the exactly-once window replicates
/// too), and keep the lag gauge current.  On sustained primary loss with
/// `auto_promote` set, flips the role to primary and exits.
fn follower_loop(
    shared: &SharedDeployment,
    metrics: &ServerMetrics,
    role: &RwLock<Role>,
    stop: &AtomicBool,
    primary: &str,
    poll: Duration,
    auto_promote: Option<Duration>,
) {
    let mut conn: Option<Client> = None;
    let mut last_contact = Instant::now();
    while !stop.load(Ordering::Acquire) {
        if conn.is_none() {
            if let Ok(mut c) = Client::connect_tcp(primary) {
                c.set_timeout(Some(Duration::from_secs(5))).ok();
                conn = Some(c);
            }
        }
        let local_rows = shared.snapshot().rows();
        // The delete cursor comes from this node's own log: every applied
        // delete entry was re-logged locally, so the count survives
        // restarts without separate cursor state.
        let local_dseq = match shared.log_delete_entries() {
            Ok(d) => d,
            Err(_) => {
                sleep_unless_stopped(stop, poll);
                continue;
            }
        };
        let pulled = match conn.as_mut() {
            Some(c) => c.replicate(local_rows, local_dseq, REPLICATE_MAX_ENTRIES as u32),
            None => Err(crate::client::ClientError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "primary unreachable",
            ))),
        };
        match pulled {
            Ok(reply) => {
                last_contact = Instant::now();
                let mut applied_rows = 0u64;
                let mut healthy = true;
                for (first_row, txns, receipts, deletes) in &reply.entries {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    if *first_row != shared.snapshot().rows() {
                        // A non-contiguous entry means this pull raced a
                        // concurrent apply (or the stream desynced): drop
                        // it and re-pull from the authoritative row count.
                        // Delete entries carry the primary's row count at
                        // delete time, so the same check covers them.
                        healthy = false;
                        break;
                    }
                    let t0 = Instant::now();
                    let applied = if !deletes.is_empty() {
                        // A delete entry: tombstone exactly the rows the
                        // primary did, carrying its exactly-once receipts
                        // (req_id → deleted count) into the local window.
                        let dr: Vec<(u64, u64)> =
                            receipts.iter().map(|&(id, _, n)| (id, n)).collect();
                        shared.delete_rows(deletes, &dr).map(|_| 0u64)
                    } else {
                        let txns: Vec<Transaction> = txns
                            .iter()
                            .map(|(tid, items)| {
                                Transaction::new(*tid, Itemset::from_values(items))
                            })
                            .collect();
                        let n = txns.len() as u64;
                        shared.commit_with(&txns, receipts).map(|_| n)
                    };
                    match applied {
                        Ok(n) => {
                            metrics
                                .follower_apply_us
                                .record(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                            metrics
                                .follower_applied_batches
                                .fetch_add(1, Ordering::Relaxed);
                            applied_rows += n;
                        }
                        Err(_) => {
                            healthy = false;
                            break;
                        }
                    }
                }
                if applied_rows > 0 {
                    metrics.follower_pull_rows.record(applied_rows);
                }
                let lag = reply.rows.saturating_sub(shared.snapshot().rows());
                metrics.replication_lag_rows.store(lag, Ordering::Relaxed);
                if !healthy || lag == 0 {
                    sleep_unless_stopped(stop, poll);
                }
                // else: still behind — pull the next chunk immediately.
            }
            Err(e) => {
                if let crate::client::ClientError::Server(msg) = &e {
                    // A typed error proves the primary is alive.  When it
                    // says the log cannot serve our cursor — the primary
                    // compacted (row numbering restarted) or its log was
                    // truncated past us — wipe and resync from row 0: the
                    // compaction staged a complete bootstrap log, so the
                    // next pulls rebuild this follower verbatim.
                    last_contact = Instant::now();
                    if msg.contains("resync") && shared.reset_files().is_ok() {
                        metrics.follower_resyncs.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    sleep_unless_stopped(stop, poll);
                    continue;
                }
                conn = None;
                if !matches!(e, crate::client::ClientError::Server(_)) {
                    // Transport-level loss counts toward primary-loss; a
                    // typed server error proves the primary is alive.
                    if let Some(limit) = auto_promote {
                        if last_contact.elapsed() >= limit {
                            let mut r = role.write().unwrap_or_else(|p| p.into_inner());
                            if matches!(*r, Role::Follower { .. }) {
                                *r = Role::Primary;
                                metrics.promotions.fetch_add(1, Ordering::Relaxed);
                                metrics.replication_lag_rows.store(0, Ordering::Relaxed);
                            }
                            return;
                        }
                    }
                }
                sleep_unless_stopped(stop, poll);
            }
        }
    }
}

/// The background maintenance thread: every `interval`, run one policy
/// evaluation ([`Engine::maintain_auto`]) against the engine.  Holds only
/// a weak handle so the engine's `Drop` (which joins this thread) can
/// run; exits as soon as the engine is gone or the stop flag flips.
fn maintenance_loop(engine: &Weak<Engine>, stop: &AtomicBool, interval: Duration) {
    loop {
        sleep_unless_stopped(stop, interval);
        if stop.load(Ordering::Acquire) {
            return;
        }
        let Some(engine) = engine.upgrade() else {
            return;
        };
        if engine.is_draining() {
            return;
        }
        // Policy failures are recorded (the writer heals itself on the
        // next write) and the loop keeps ticking.
        engine.maintain_auto(0).ok();
    }
}

/// The outcome for a job that needed no append of its own (`Window` or
/// `LookupFailed`), stamped with the current epoch.
fn outcome_without_commit(disp: Disposition, epoch: u64) -> InsertOutcome {
    match disp {
        Disposition::Window {
            first_row,
            appended,
        } => InsertOutcome::Committed {
            first_row,
            appended,
            epoch,
            deduped: true,
        },
        Disposition::LookupFailed(msg) => InsertOutcome::Failed(msg),
        Disposition::Append { .. } | Disposition::SameBatch { .. } => {
            unreachable!("append dispositions always ride a commit")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbs_storage::diskbbs::DiskDeployment;
    use bbs_storage::{FaultPlan, SharedFaultPlan};
    use std::path::PathBuf;

    fn base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_engine_{}_{}", std::process::id(), name));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            DiskDeployment::remove_files(&self.0).ok();
        }
    }

    fn cfg() -> ServerConfig {
        ServerConfig {
            cache_pages: 128,
            queue_capacity: 8,
            ..ServerConfig::default()
        }
    }

    fn committed(outcome: InsertOutcome) -> (u64, u64, u64, bool) {
        match outcome {
            InsertOutcome::Committed {
                first_row,
                appended,
                epoch,
                deduped,
            } => (first_row, appended, epoch, deduped),
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn insert_then_count_probe_mine() {
        let b = base("basic");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");

        let txns: Vec<Transaction> = (0..20)
            .map(|i| {
                Transaction::new(
                    i,
                    Itemset::from_values(if i % 2 == 0 { &[1, 2] } else { &[1, 3] }),
                )
            })
            .collect();
        let (first_row, appended, epoch, deduped) = committed(engine.insert(txns));
        assert_eq!((first_row, appended, deduped), (0, 20, false));
        assert!(epoch >= 1);

        let (support, snap) = engine.count(&[1]).expect("count");
        assert_eq!(support, 20);
        assert_eq!(snap.rows(), 20);

        let probed = engine.probe(3).expect("probe").expect("present");
        assert_eq!(probed.tid.0, 3);
        assert_eq!(engine.probe(20).expect("probe"), None);

        let (result, _) = engine
            .mine(Scheme::Dfp, SupportThreshold::Count(10), 2)
            .expect("mine");
        assert_eq!(result.patterns.support(&Itemset::from_values(&[1, 2])), Some(10));
        assert_eq!(result.patterns.support(&Itemset::from_values(&[1])), Some(20));
    }

    #[test]
    fn handle_dispatches_and_records_metrics() {
        let b = base("handle");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");

        assert_eq!(engine.handle(&Request::Ping), Response::Ok(Reply::Pong));
        let resp = engine.handle(&Request::Insert {
            req_id: 0,
            txns: vec![(0, vec![4, 5]), (1, vec![4])],
        });
        assert!(matches!(resp, Response::Ok(Reply::Insert { appended: 2, .. })));
        let resp = engine.handle(&Request::Count { items: vec![4] });
        match resp {
            Response::Ok(Reply::Count { support, rows, .. }) => {
                assert_eq!((support, rows), (2, 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let m = engine.metrics();
        assert_eq!(m.count.requests.load(Ordering::Relaxed), 1);
        assert_eq!(m.insert.requests.load(Ordering::Relaxed), 1);
        assert_eq!(m.count.latency_us.count(), 1);

        let resp = engine.handle(&Request::Stats);
        match resp {
            Response::Ok(Reply::Stats { json }) => {
                assert!(json.contains("\"rows\":2"));
                assert!(json.contains("\"commits\":1"));
                assert!(json.contains("\"dedup_hits\":0"));
                assert!(json.contains("\"disk_full\":0"));
                assert!(json.contains("\"commit_window_ms\":50"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn count_many_matches_per_op_and_admits_by_work() {
        let b = base("count_many");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let txns: Vec<Transaction> = (0..30)
            .map(|i| {
                Transaction::new(
                    i,
                    Itemset::from_values(if i % 3 == 0 { &[1, 2, 5] } else { &[1, 4] }),
                )
            })
            .collect();
        committed(engine.insert(txns));

        let itemsets: Vec<Vec<u32>> =
            vec![vec![1], vec![1, 2], vec![2, 5], vec![], vec![9]];
        let resp = engine.handle(&Request::CountMany {
            itemsets: itemsets.clone(),
        });
        let (supports, rows) = match resp {
            Response::Ok(Reply::CountMany { supports, rows, .. }) => (supports, rows),
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(rows, 30);
        assert_eq!(supports.len(), itemsets.len());
        for (i, items) in itemsets.iter().enumerate() {
            let (solo, _) = engine.count(items).expect("count");
            assert_eq!(supports[i], solo, "itemset {items:?}");
        }
        let m = engine.metrics();
        assert_eq!(m.count_many.requests.load(Ordering::Relaxed), 1);
        assert_eq!(m.count_many.latency_us.count(), 1);
        assert_eq!(m.count_many_batch.count(), 1);
        assert_eq!(m.count_many_batch.max(), itemsets.len() as u64);

        // A batch whose total item count exceeds the work cap is rejected
        // by admission control, not served as "one request".
        let huge: Vec<Vec<u32>> = (0..=(COUNT_MANY_MAX_WORK as u32 / 4))
            .map(|i| vec![i, i + 1, i + 2, i + 3])
            .collect();
        let resp = engine.handle(&Request::CountMany { itemsets: huge });
        assert_eq!(resp, Response::Overloaded);
        assert!(m.overloaded.load(Ordering::Relaxed) >= 1);

        let json = engine.stats_json();
        assert!(json.contains("\"count_many\":{\"requests\":2"));
        assert!(json.contains("\"count_many_batch\":{\"count\":1"));
    }

    #[test]
    fn draining_rejects_new_inserts_but_commits_queued() {
        let b = base("drain");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let outcome = engine.insert(vec![Transaction::new(0, Itemset::from_values(&[9]))]);
        assert!(matches!(outcome, InsertOutcome::Committed { .. }));
        engine.begin_drain();
        let outcome = engine.insert(vec![Transaction::new(1, Itemset::from_values(&[9]))]);
        assert_eq!(outcome, InsertOutcome::Overloaded);
        assert!(engine.metrics().overloaded.load(Ordering::Relaxed) >= 1);
        engine.join();
        // Reads still serve after the drain.
        let (support, _) = engine.count(&[9]).expect("count");
        assert_eq!(support, 1);
    }

    #[test]
    fn group_commit_coalesces_concurrent_producers() {
        let b = base("coalesce");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let n_threads = 8;
        let per = 25u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let txns: Vec<Transaction> = (0..per)
                    .map(|i| Transaction::new(t * per + i, Itemset::from_values(&[7])))
                    .collect();
                engine.insert(txns)
            }));
        }
        let mut rows_seen = Vec::new();
        for h in handles {
            let (first_row, appended, _, _) = committed(h.join().expect("join"));
            assert_eq!(appended, per);
            rows_seen.push(first_row);
        }
        // Receipts tile the row space exactly: disjoint consecutive ranges.
        rows_seen.sort_unstable();
        for (i, &r) in rows_seen.iter().enumerate() {
            assert_eq!(r, i as u64 * per);
        }
        let (support, snap) = engine.count(&[7]).expect("count");
        assert_eq!(support, n_threads * per);
        assert_eq!(snap.rows(), n_threads * per);
        // Fewer commits than producers proves coalescing happened — or at
        // worst equal, when the committer never found a second job waiting.
        let profile_commits = engine.metrics().batch_size.count();
        assert!(profile_commits <= n_threads);
    }

    #[test]
    fn commit_window_zero_gives_one_batch_per_commit() {
        let b = base("window0");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(
            &b,
            ServerConfig {
                commit_window: Duration::ZERO,
                ..cfg()
            },
        )
        .expect("open");
        let n_threads = 6u64;
        let per = 4u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let txns: Vec<Transaction> = (0..per)
                    .map(|i| Transaction::new(t * per + i, Itemset::from_values(&[3])))
                    .collect();
                engine.insert(txns)
            }));
        }
        for h in handles {
            let (_, appended, _, _) = committed(h.join().expect("join"));
            assert_eq!(appended, per);
        }
        // Window 0 never coalesces: exactly one commit per producer batch,
        // and every commit is exactly one batch wide.
        let batches = &engine.metrics().batch_size;
        assert_eq!(batches.count(), n_threads);
        assert_eq!(batches.max(), per);
        assert_eq!(batches.sum(), n_threads * per);
    }

    #[test]
    fn duplicate_request_id_returns_original_receipt() {
        let b = base("dedup");
        let _g = Cleanup(b.clone());
        let engine = Engine::open(&b, cfg()).expect("open");
        let txns: Vec<Transaction> = (0..3)
            .map(|i| Transaction::new(i, Itemset::from_values(&[8])))
            .collect();

        let (first_row, appended, _, deduped) = committed(engine.insert_with_id(42, txns.clone()));
        assert_eq!((first_row, appended, deduped), (0, 3, false));

        // Same request ID again — e.g. a client retry after a lost reply.
        let (first_row, appended, _, deduped) = committed(engine.insert_with_id(42, txns));
        assert_eq!((first_row, appended, deduped), (0, 3, true));

        // Nothing was appended twice.
        let (support, snap) = engine.count(&[8]).expect("count");
        assert_eq!((support, snap.rows()), (3, 3));
        assert_eq!(engine.metrics().dedup_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retry_after_timeout_and_restart_is_answered_from_window() {
        let b = base("retry");
        let _g = Cleanup(b.clone());
        let txns: Vec<Transaction> = (0..5)
            .map(|i| Transaction::new(i, Itemset::from_values(&[6])))
            .collect();
        {
            // A receipt timeout so short the reply is (almost always)
            // lost — the wire-level analogue of a dropped connection or a
            // crash between commit and reply.  The commit itself lands.
            let engine = Engine::open(
                &b,
                ServerConfig {
                    insert_timeout: Duration::from_nanos(1),
                    commit_window: Duration::ZERO,
                    ..cfg()
                },
            )
            .expect("open");
            let _ = engine.insert_with_id(7, txns.clone());
            let deadline = Instant::now() + Duration::from_secs(10);
            while engine.snapshot().rows() < 5 {
                assert!(Instant::now() < deadline, "commit never landed");
                std::thread::sleep(Duration::from_millis(5));
            }
            engine.join();
        }
        // New process, same deployment: the window was persisted with the
        // commit record, so the retry is a dedup hit, not a second append.
        let engine = Engine::open(&b, cfg()).expect("reopen");
        let (first_row, appended, _, deduped) = committed(engine.insert_with_id(7, txns));
        assert_eq!((first_row, appended, deduped), (0, 5, true));
        let (support, snap) = engine.count(&[6]).expect("count");
        assert_eq!((support, snap.rows()), (5, 5));
    }

    #[test]
    fn disk_full_is_typed_and_recoverable() {
        let b = base("diskfull");
        let _g = Cleanup(b.clone());
        let plan: SharedFaultPlan = FaultPlan::counting();
        let hasher: Arc<dyn ItemHasher> = Arc::new(Md5BloomHasher::new(4));
        let shared =
            SharedDeployment::open_faulty(&b, 64, hasher, 128, plan.clone()).expect("open");
        let engine = Engine::with_shared(shared, cfg()).expect("engine");

        let txn = |i: u64| vec![Transaction::new(i, Itemset::from_values(&[2]))];
        assert!(matches!(
            engine.insert_with_id(1, txn(0)),
            InsertOutcome::Committed { deduped: false, .. }
        ));

        plan.set_disk_full(true);
        assert_eq!(engine.insert_with_id(2, txn(1)), InsertOutcome::DiskFull);
        assert!(engine.metrics().disk_full.load(Ordering::Relaxed) >= 1);
        // Reads keep serving the committed prefix.
        let (support, snap) = engine.count(&[2]).expect("count");
        assert_eq!((support, snap.rows()), (1, 1));
        // A retry of the *committed* request is still answered from the
        // window even while the disk is full.
        let (first_row, appended, _, deduped) = committed(engine.insert_with_id(1, txn(0)));
        assert_eq!((first_row, appended, deduped), (0, 1, true));

        plan.set_disk_full(false);
        let (first_row, appended, _, deduped) = committed(engine.insert_with_id(2, txn(1)));
        assert_eq!((first_row, appended, deduped), (1, 1, false));
        let (support, snap) = engine.count(&[2]).expect("count");
        assert_eq!((support, snap.rows()), (2, 2));
        let json = engine.stats_json();
        assert!(json.contains("\"writer_heals\":1"));
    }
}
