//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! # Framing
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! [ len: u32 LE ][ payload: len bytes ]
//! ```
//!
//! `len` counts the payload only.  Frames larger than [`MAX_FRAME`] are
//! rejected before allocation (a malformed peer cannot make the server
//! allocate gigabytes from four bytes of garbage).
//!
//! # Payloads
//!
//! A request payload is an opcode byte followed by an op-specific body; a
//! response payload is a status byte (`0` ok, `1` overloaded, `2` error),
//! then for ok the opcode it answers and its body, for error a UTF-8
//! message.  All integers are little-endian; itemsets are `u16` counts
//! followed by `u32` item values.  See [`Request`] and [`Response`] for
//! the exact bodies — `encode`/`decode` on each are the single source of
//! truth, exercised by the round-trip tests below.
//!
//! The protocol is deliberately version-stamped: byte 0 of every request
//! is the opcode, and unknown opcodes decode to a typed error rather than
//! a desync, so a newer client degrades cleanly against an older server.

use bbs_core::Scheme;
use bbs_tdb::SupportThreshold;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (64 MiB) — generous for mine results,
/// small enough to bound a malicious length prefix.
pub const MAX_FRAME: usize = 64 << 20;

/// Opcode values (request byte 0; echoed in ok responses).
pub mod op {
    /// Liveness check.
    pub const PING: u8 = 0;
    /// `CountItemSet` against the latest snapshot.
    pub const COUNT: u8 = 1;
    /// Group-committed transaction ingest.
    pub const INSERT: u8 = 2;
    /// Full frequent-pattern mine of a snapshot.
    pub const MINE: u8 = 3;
    /// Fetch one transaction by row position.
    pub const PROBE: u8 = 4;
    /// Server metrics as a JSON document.
    pub const STATS: u8 = 5;
    /// Ask the server to drain and exit.
    pub const SHUTDOWN: u8 = 6;
    /// Pull committed replication-log entries (follower → primary).
    pub const REPLICATE: u8 = 7;
    /// Promote a follower to primary (writable).
    pub const PROMOTE: u8 = 8;
    /// Batched `CountItemSet`: many itemsets against one snapshot.
    pub const COUNT_MANY: u8 = 9;
    /// Pin the latest snapshot so later requests can count against it.
    pub const SNAPSHOT_PIN: u8 = 10;
    /// Batched `CountItemSet` against a previously pinned snapshot.
    pub const COUNT_MANY_AT: u8 = 11;
    /// Stream transactions of a pinned snapshot in row order.
    pub const ROWS: u8 = 12;
    /// Tombstone-delete transactions by TID (exactly-once, replicated).
    pub const DELETE: u8 = 13;
    /// Index maintenance: FPR probe, compaction, fold, or policy auto.
    pub const MAINTAIN: u8 = 14;
}

/// Actions of a [`Request::Maintain`] (`action` byte).
pub mod maintain_action {
    /// Measure the live false-positive rate; change nothing.
    pub const PROBE_FPR: u8 = 0;
    /// Compact: rewrite the deployment minus tombstoned rows.
    pub const COMPACT: u8 = 1;
    /// Fold: halve the slice width in place.
    pub const FOLD: u8 = 2;
    /// Run the server's maintenance policy once: measure FPR and
    /// fold/compact only if it crosses the configured threshold.
    pub const AUTO: u8 = 3;
}

/// Response status values (response byte 0).
pub mod status {
    /// Request executed; body follows.
    pub const OK: u8 = 0;
    /// Admission control rejected the request; retry later.
    pub const OVERLOADED: u8 = 1;
    /// Request failed; UTF-8 message follows.
    pub const ERR: u8 = 2;
    /// The commit path is out of disk space; reads still serve, and the
    /// request is safe to retry (with the same request ID) once space
    /// returns.
    pub const DISK_FULL: u8 = 3;
    /// The request frame did not parse; the server closes the connection
    /// after sending this (a garbled stream cannot be re-synchronised).
    pub const BAD_FRAME: u8 = 4;
    /// This server is a read-only follower; writes must go to the
    /// primary it names (UTF-8 address follows, possibly empty).
    pub const NOT_PRIMARY: u8 = 5;
    /// A scatter-gather coordinator could not reach one of its shards:
    /// the shard index (u32) and a UTF-8 detail message follow.  The
    /// partial results are discarded — a distributed answer is never a
    /// silently-wrong total.
    pub const SHARD_UNAVAILABLE: u8 = 6;
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check; answered with [`Reply::Pong`].
    Ping,
    /// Support query for one itemset (item values, unsorted is fine).
    Count {
        /// Item values of the query itemset.
        items: Vec<u32>,
    },
    /// Append transactions `(tid, items)` through the group-commit queue.
    Insert {
        /// Client-supplied request ID for exactly-once ingest: a retry
        /// carrying the ID of a batch that already committed is answered
        /// with the original receipt instead of re-appending.  0 opts out
        /// of deduplication.
        req_id: u64,
        /// The transactions to append, in order.
        txns: Vec<(u64, Vec<u32>)>,
    },
    /// Mine every frequent pattern of the latest snapshot.
    Mine {
        /// Filter/refine scheme to run.
        scheme: Scheme,
        /// Minimum support.
        threshold: SupportThreshold,
        /// Worker threads for the filter phase (0 = server default).
        threads: u16,
    },
    /// Fetch the transaction stored at `row`.
    Probe {
        /// Row position (0-based append order).
        row: u64,
    },
    /// Server metrics snapshot.
    Stats,
    /// Drain queued ingest, then stop serving.
    Shutdown,
    /// Pull committed replication-log entries starting at `from_row`.
    /// The row doubles as the follower's cumulative ACK: everything below
    /// it is applied and durable on the follower, so the primary can
    /// compute replication lag from the last pull it served.
    Replicate {
        /// First row the follower is missing (its committed row count).
        from_row: u64,
        /// Delete-entry cursor: how many committed delete entries the
        /// follower has already applied.  Row and delete cursors advance
        /// independently (deletes occupy no rows), so catching up takes
        /// both — the server sends every entry past *either* cursor, in
        /// log order.
        from_dseq: u64,
        /// Upper bound on entries per reply (the server applies its own
        /// byte budget too, keeping replies well under [`MAX_FRAME`]).
        max_entries: u32,
    },
    /// Flip this follower to primary (idempotent on a primary).
    Promote,
    /// Support queries for many itemsets, answered from **one** snapshot
    /// via the shared-scan executor.  Admission control charges the whole
    /// batch by its total item count, not as one request.
    CountMany {
        /// The query itemsets (item values each, unsorted is fine).
        itemsets: Vec<Vec<u32>>,
    },
    /// Pin the latest snapshot in the server's bounded pin table so
    /// later [`Request::CountManyAt`] / [`Request::Rows`] requests can
    /// answer against that exact epoch (the remote `ShardHandle`
    /// contract).  Idempotent; re-pinning the same epoch refreshes it.
    SnapshotPin,
    /// Support queries for many itemsets against a pinned epoch, with an
    /// optional per-shard early-exit budget τ.  With `tau = Some(t)` the
    /// single-shard τ contract applies per answer: exact when `≥ t`, an
    /// upper bound otherwise (0 always exact).  An epoch that is no
    /// longer pinned answers with a typed `stale pin` error — the caller
    /// re-pins and retries.
    CountManyAt {
        /// The pinned epoch to answer from.
        epoch: u64,
        /// The query itemsets (item values each, unsorted is fine).
        itemsets: Vec<Vec<u32>>,
        /// Early-exit budget; `None` = every answer exact.
        tau: Option<u64>,
    },
    /// Tombstone-delete every live transaction holding one of `tids`.
    /// Routed and deduplicated exactly like [`Request::Insert`]: a retry
    /// carrying the ID of a delete that already committed is answered
    /// with the original receipt instead of re-resolving.
    Delete {
        /// Client-supplied request ID for exactly-once deletes (0 opts
        /// out of deduplication).
        req_id: u64,
        /// TIDs whose live rows should be tombstoned.
        tids: Vec<u64>,
    },
    /// Index maintenance (see [`maintain_action`]): probe the measured
    /// FPR, compact tombstones away, fold the width in half, or let the
    /// server's policy decide (`AUTO`).
    Maintain {
        /// One of the [`maintain_action`] values.
        action: u8,
        /// Action argument: FPR probe sample count (0 = default) for
        /// `PROBE_FPR`/`AUTO`, target width for `COMPACT` (0 = keep).
        arg: u64,
    },
    /// Stream `(tid, items)` rows of a pinned snapshot, `limit` at a
    /// time from row `from` — the bulk transfer a coordinator uses to
    /// rebuild a shard's transactions for distributed mining.
    Rows {
        /// The pinned epoch to read from.
        epoch: u64,
        /// First row to return (0-based append order).
        from: u64,
        /// Upper bound on rows per reply (the server applies its own
        /// byte budget too, keeping replies under [`MAX_FRAME`]).
        limit: u32,
    },
}

/// The body of an ok response (tagged with the opcode it answers).
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Count`].
    Count {
        /// The BBS support estimate (exact for singletons; an upper bound
        /// with false positives possible for larger sets).
        support: u64,
        /// Epoch of the snapshot that answered.
        epoch: u64,
        /// Rows visible to that snapshot.
        rows: u64,
    },
    /// Answer to [`Request::Insert`].
    Insert {
        /// First row the batch occupies.
        first_row: u64,
        /// Number of rows appended.
        appended: u64,
        /// Epoch whose snapshot first shows the batch.
        epoch: u64,
        /// True when this receipt was answered from the exactly-once
        /// dedup window (the batch had already committed; nothing was
        /// appended by *this* request).
        deduped: bool,
    },
    /// Answer to [`Request::Mine`].
    Mine {
        /// Epoch of the mined snapshot.
        epoch: u64,
        /// Rows the mine covered.
        rows: u64,
        /// `(items, support, approximate)` per frequent pattern.
        patterns: Vec<(Vec<u32>, u64, bool)>,
    },
    /// Answer to [`Request::Probe`].
    Probe {
        /// The `(tid, items)` at the requested row, or `None` past the end.
        txn: Option<(u64, Vec<u32>)>,
    },
    /// Answer to [`Request::Stats`]: a JSON document.
    Stats {
        /// The metrics document.
        json: String,
    },
    /// Answer to [`Request::Shutdown`]: the server is draining.
    ShuttingDown,
    /// Answer to [`Request::Replicate`]: a run of committed log entries
    /// starting exactly at the requested row (empty = caught up).
    LogEntries {
        /// Committed rows on the serving node when the pull was answered
        /// (what the follower measures its lag against).
        rows: u64,
        /// Entries in log order: `(first_row, txns, receipts, deletes)`,
        /// receipts as `(req_id, offset, len)` relative to the entry's
        /// batch (for delete entries, `(req_id, 0, deleted_count)`).
        entries: Vec<LogEntry>,
    },
    /// Answer to [`Request::Promote`]: this node now accepts writes.
    Promoted {
        /// Epoch at promotion.
        epoch: u64,
        /// Committed rows at promotion.
        rows: u64,
    },
    /// Answer to [`Request::CountMany`]: one support per query itemset, in
    /// request order, all from the same snapshot.
    CountMany {
        /// BBS support estimates, one per itemset (semantics as in
        /// [`Reply::Count`]).
        supports: Vec<u64>,
        /// Epoch of the snapshot that answered every query.
        epoch: u64,
        /// Rows visible to that snapshot.
        rows: u64,
    },
    /// Answer to [`Request::SnapshotPin`]: the pinned epoch plus the
    /// identity facts a coordinator checks against its topology before
    /// trusting cross-shard sums (same width + hasher ⇒ identical
    /// per-row signatures ⇒ per-shard sums are the unsharded estimates).
    SnapshotPinned {
        /// Epoch of the pinned snapshot.
        epoch: u64,
        /// Rows visible to that snapshot.
        rows: u64,
        /// Signature width (bits) of the serving deployment.
        width: u32,
        /// Identity of the item hasher (e.g. `md5/4`).
        hasher: String,
    },
    /// Answer to [`Request::CountManyAt`]: one support per query
    /// itemset, in request order, all from the pinned epoch.
    CountsAt {
        /// The pinned epoch that answered.
        epoch: u64,
        /// Per-itemset supports under the request's τ contract.
        supports: Vec<u64>,
    },
    /// Answer to [`Request::Delete`].
    Delete {
        /// Live rows tombstoned by this request (0 when every named TID
        /// was absent or already deleted).
        deleted: u64,
        /// Epoch whose snapshot first masks the deleted rows.
        epoch: u64,
        /// True when this receipt was answered from the exactly-once
        /// dedup window (the delete had already committed).
        deduped: bool,
    },
    /// Answer to [`Request::Maintain`].
    Maintain {
        /// The [`maintain_action`] actually performed (`AUTO` resolves
        /// to what the policy chose; `PROBE_FPR` when it chose nothing).
        action_taken: u8,
        /// Slice width after the action.
        width: u32,
        /// Live rows after the action.
        live_rows: u64,
        /// Tombstoned rows remaining after the action.
        deleted_rows: u64,
        /// Measured false-positive rate (f64 bits; measured before any
        /// fold/compact the action performed).
        fpr_bits: u64,
    },
    /// Answer to [`Request::Rows`]: a run of transactions starting at
    /// the requested row (empty = past the end of the pinned snapshot).
    Rows {
        /// Total rows visible to the pinned snapshot (the caller knows
        /// when the stream is complete without an extra round trip).
        total: u64,
        /// The `(tid, items)` rows, in append order.
        txns: Vec<(u64, Vec<u32>)>,
    },
}

/// One replication-log entry on the wire: the batch's first row, its
/// transactions `(tid, items)`, its exactly-once receipts
/// `(req_id, offset, len)` with offsets relative to the batch, and the
/// row numbers it tombstones (delete entries carry rows and no
/// transactions; for them `first_row` is the primary's row count at
/// delete time, which equals an in-order follower's row count).
pub type LogEntry = (
    u64,
    Vec<(u64, Vec<u32>)>,
    Vec<(u64, u64, u64)>,
    Vec<u64>,
);

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request executed.
    Ok(Reply),
    /// Admission control rejected the request (bounded ingest queue full
    /// or the server is draining) — the typed retry-later signal.
    Overloaded,
    /// The request failed server-side.
    Err(String),
    /// The commit path has no disk space; retry with the same request ID
    /// once space returns (reads keep serving meanwhile).
    DiskFull,
    /// The request frame did not parse; the connection is closed after
    /// this response.
    BadFrame(String),
    /// This server is a read-only follower: writes must go to the named
    /// primary (empty when the follower does not know one).
    NotPrimary(String),
    /// A coordinator's scatter could not reach shard `.0` (after its
    /// retry budget, including any follower failover): the partial
    /// results were discarded and the detail message explains why.
    ShardUnavailable(u32, String),
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A little-endian byte-slice reader with bounds-checked primitives.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated payload"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn items(&mut self) -> io::Result<Vec<u32>> {
        let n = self.u16()? as usize;
        (0..n).map(|_| self.u32()).collect()
    }

    fn done(&self) -> io::Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes in payload"))
        }
    }
}

fn put_items(out: &mut Vec<u8>, items: &[u32]) {
    debug_assert!(items.len() <= u16::MAX as usize, "itemset too large");
    out.extend_from_slice(&(items.len() as u16).to_le_bytes());
    for &v in items {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Reader) -> io::Result<String> {
    let n = r.u32()? as usize;
    String::from_utf8(r.take(n)?.to_vec()).map_err(|_| bad("invalid UTF-8"))
}

fn put_threshold(out: &mut Vec<u8>, t: SupportThreshold) {
    match t {
        SupportThreshold::Count(c) => {
            out.push(0);
            out.extend_from_slice(&c.to_le_bytes());
        }
        SupportThreshold::Fraction(f) => {
            out.push(1);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
    }
}

fn get_threshold(r: &mut Reader) -> io::Result<SupportThreshold> {
    match r.u8()? {
        0 => Ok(SupportThreshold::Count(r.u64()?)),
        1 => {
            let f = f64::from_bits(r.u64()?);
            if !(0.0..=1.0).contains(&f) {
                return Err(bad(format!("support fraction out of range: {f}")));
            }
            Ok(SupportThreshold::Fraction(f))
        }
        k => Err(bad(format!("unknown threshold kind {k}"))),
    }
}

impl Request {
    /// Serialises this request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(op::PING),
            Request::Count { items } => {
                out.push(op::COUNT);
                put_items(&mut out, items);
            }
            Request::Insert { req_id, txns } => {
                out.push(op::INSERT);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.extend_from_slice(&(txns.len() as u32).to_le_bytes());
                for (tid, items) in txns {
                    out.extend_from_slice(&tid.to_le_bytes());
                    put_items(&mut out, items);
                }
            }
            Request::Mine {
                scheme,
                threshold,
                threads,
            } => {
                out.push(op::MINE);
                out.push(scheme.id());
                put_threshold(&mut out, *threshold);
                out.extend_from_slice(&threads.to_le_bytes());
            }
            Request::Probe { row } => {
                out.push(op::PROBE);
                out.extend_from_slice(&row.to_le_bytes());
            }
            Request::Stats => out.push(op::STATS),
            Request::Shutdown => out.push(op::SHUTDOWN),
            Request::Replicate {
                from_row,
                from_dseq,
                max_entries,
            } => {
                out.push(op::REPLICATE);
                out.extend_from_slice(&from_row.to_le_bytes());
                out.extend_from_slice(&from_dseq.to_le_bytes());
                out.extend_from_slice(&max_entries.to_le_bytes());
            }
            Request::Promote => out.push(op::PROMOTE),
            Request::CountMany { itemsets } => {
                out.push(op::COUNT_MANY);
                out.extend_from_slice(&(itemsets.len() as u32).to_le_bytes());
                for items in itemsets {
                    put_items(&mut out, items);
                }
            }
            Request::SnapshotPin => out.push(op::SNAPSHOT_PIN),
            Request::CountManyAt {
                epoch,
                itemsets,
                tau,
            } => {
                out.push(op::COUNT_MANY_AT);
                out.extend_from_slice(&epoch.to_le_bytes());
                match tau {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        out.extend_from_slice(&t.to_le_bytes());
                    }
                }
                out.extend_from_slice(&(itemsets.len() as u32).to_le_bytes());
                for items in itemsets {
                    put_items(&mut out, items);
                }
            }
            Request::Delete { req_id, tids } => {
                out.push(op::DELETE);
                out.extend_from_slice(&req_id.to_le_bytes());
                out.extend_from_slice(&(tids.len() as u32).to_le_bytes());
                for tid in tids {
                    out.extend_from_slice(&tid.to_le_bytes());
                }
            }
            Request::Maintain { action, arg } => {
                out.push(op::MAINTAIN);
                out.push(*action);
                out.extend_from_slice(&arg.to_le_bytes());
            }
            Request::Rows { epoch, from, limit } => {
                out.push(op::ROWS);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&from.to_le_bytes());
                out.extend_from_slice(&limit.to_le_bytes());
            }
        }
        out
    }

    /// Parses a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            op::PING => Request::Ping,
            op::COUNT => Request::Count { items: r.items()? },
            op::INSERT => {
                let req_id = r.u64()?;
                let n = r.u32()? as usize;
                let mut txns = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let tid = r.u64()?;
                    txns.push((tid, r.items()?));
                }
                Request::Insert { req_id, txns }
            }
            op::MINE => {
                let scheme = Scheme::from_id(r.u8()?)
                    .ok_or_else(|| bad("unknown scheme id"))?;
                let threshold = get_threshold(&mut r)?;
                let threads = r.u16()?;
                Request::Mine {
                    scheme,
                    threshold,
                    threads,
                }
            }
            op::PROBE => Request::Probe { row: r.u64()? },
            op::STATS => Request::Stats,
            op::SHUTDOWN => Request::Shutdown,
            op::REPLICATE => Request::Replicate {
                from_row: r.u64()?,
                from_dseq: r.u64()?,
                max_entries: r.u32()?,
            },
            op::PROMOTE => Request::Promote,
            op::COUNT_MANY => {
                let n = r.u32()? as usize;
                let mut itemsets = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    itemsets.push(r.items()?);
                }
                Request::CountMany { itemsets }
            }
            op::SNAPSHOT_PIN => Request::SnapshotPin,
            op::COUNT_MANY_AT => {
                let epoch = r.u64()?;
                let tau = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    k => return Err(bad(format!("bad tau presence byte {k}"))),
                };
                let n = r.u32()? as usize;
                let mut itemsets = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    itemsets.push(r.items()?);
                }
                Request::CountManyAt {
                    epoch,
                    itemsets,
                    tau,
                }
            }
            op::DELETE => {
                let req_id = r.u64()?;
                let n = r.u32()? as usize;
                let mut tids = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    tids.push(r.u64()?);
                }
                Request::Delete { req_id, tids }
            }
            op::MAINTAIN => Request::Maintain {
                action: r.u8()?,
                arg: r.u64()?,
            },
            op::ROWS => Request::Rows {
                epoch: r.u64()?,
                from: r.u64()?,
                limit: r.u32()?,
            },
            k => return Err(bad(format!("unknown opcode {k}"))),
        };
        r.done()?;
        Ok(req)
    }

    /// The opcode this request carries (used for per-endpoint metrics).
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Ping => op::PING,
            Request::Count { .. } => op::COUNT,
            Request::Insert { .. } => op::INSERT,
            Request::Mine { .. } => op::MINE,
            Request::Probe { .. } => op::PROBE,
            Request::Stats => op::STATS,
            Request::Shutdown => op::SHUTDOWN,
            Request::Replicate { .. } => op::REPLICATE,
            Request::Promote => op::PROMOTE,
            Request::CountMany { .. } => op::COUNT_MANY,
            Request::SnapshotPin => op::SNAPSHOT_PIN,
            Request::CountManyAt { .. } => op::COUNT_MANY_AT,
            Request::Rows { .. } => op::ROWS,
            Request::Delete { .. } => op::DELETE,
            Request::Maintain { .. } => op::MAINTAIN,
        }
    }
}

impl Reply {
    fn opcode(&self) -> u8 {
        match self {
            Reply::Pong => op::PING,
            Reply::Count { .. } => op::COUNT,
            Reply::Insert { .. } => op::INSERT,
            Reply::Mine { .. } => op::MINE,
            Reply::Probe { .. } => op::PROBE,
            Reply::Stats { .. } => op::STATS,
            Reply::ShuttingDown => op::SHUTDOWN,
            Reply::LogEntries { .. } => op::REPLICATE,
            Reply::Promoted { .. } => op::PROMOTE,
            Reply::CountMany { .. } => op::COUNT_MANY,
            Reply::SnapshotPinned { .. } => op::SNAPSHOT_PIN,
            Reply::CountsAt { .. } => op::COUNT_MANY_AT,
            Reply::Rows { .. } => op::ROWS,
            Reply::Delete { .. } => op::DELETE,
            Reply::Maintain { .. } => op::MAINTAIN,
        }
    }
}

impl Response {
    /// Serialises this response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Overloaded => out.push(status::OVERLOADED),
            Response::Err(msg) => {
                out.push(status::ERR);
                put_str(&mut out, msg);
            }
            Response::DiskFull => out.push(status::DISK_FULL),
            Response::BadFrame(msg) => {
                out.push(status::BAD_FRAME);
                put_str(&mut out, msg);
            }
            Response::NotPrimary(primary) => {
                out.push(status::NOT_PRIMARY);
                put_str(&mut out, primary);
            }
            Response::ShardUnavailable(shard, msg) => {
                out.push(status::SHARD_UNAVAILABLE);
                out.extend_from_slice(&shard.to_le_bytes());
                put_str(&mut out, msg);
            }
            Response::Ok(reply) => {
                out.push(status::OK);
                out.push(reply.opcode());
                match reply {
                    Reply::Pong | Reply::ShuttingDown => {}
                    Reply::Count {
                        support,
                        epoch,
                        rows,
                    } => {
                        out.extend_from_slice(&support.to_le_bytes());
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&rows.to_le_bytes());
                    }
                    Reply::Insert {
                        first_row,
                        appended,
                        epoch,
                        deduped,
                    } => {
                        out.extend_from_slice(&first_row.to_le_bytes());
                        out.extend_from_slice(&appended.to_le_bytes());
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.push(u8::from(*deduped));
                    }
                    Reply::Mine {
                        epoch,
                        rows,
                        patterns,
                    } => {
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&rows.to_le_bytes());
                        out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
                        for (items, support, approx) in patterns {
                            put_items(&mut out, items);
                            out.extend_from_slice(&support.to_le_bytes());
                            out.push(u8::from(*approx));
                        }
                    }
                    Reply::Probe { txn } => match txn {
                        None => out.push(0),
                        Some((tid, items)) => {
                            out.push(1);
                            out.extend_from_slice(&tid.to_le_bytes());
                            put_items(&mut out, items);
                        }
                    },
                    Reply::Stats { json } => put_str(&mut out, json),
                    Reply::LogEntries { rows, entries } => {
                        out.extend_from_slice(&rows.to_le_bytes());
                        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                        for (first_row, txns, receipts, deletes) in entries {
                            out.extend_from_slice(&first_row.to_le_bytes());
                            out.extend_from_slice(&(txns.len() as u32).to_le_bytes());
                            for (tid, items) in txns {
                                out.extend_from_slice(&tid.to_le_bytes());
                                put_items(&mut out, items);
                            }
                            out.extend_from_slice(&(receipts.len() as u32).to_le_bytes());
                            for (req_id, offset, len) in receipts {
                                out.extend_from_slice(&req_id.to_le_bytes());
                                out.extend_from_slice(&offset.to_le_bytes());
                                out.extend_from_slice(&len.to_le_bytes());
                            }
                            out.extend_from_slice(&(deletes.len() as u32).to_le_bytes());
                            for row in deletes {
                                out.extend_from_slice(&row.to_le_bytes());
                            }
                        }
                    }
                    Reply::Promoted { epoch, rows } => {
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&rows.to_le_bytes());
                    }
                    Reply::CountMany {
                        supports,
                        epoch,
                        rows,
                    } => {
                        out.extend_from_slice(&(supports.len() as u32).to_le_bytes());
                        for &s in supports {
                            out.extend_from_slice(&s.to_le_bytes());
                        }
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&rows.to_le_bytes());
                    }
                    Reply::SnapshotPinned {
                        epoch,
                        rows,
                        width,
                        hasher,
                    } => {
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&rows.to_le_bytes());
                        out.extend_from_slice(&width.to_le_bytes());
                        put_str(&mut out, hasher);
                    }
                    Reply::CountsAt { epoch, supports } => {
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.extend_from_slice(&(supports.len() as u32).to_le_bytes());
                        for &s in supports {
                            out.extend_from_slice(&s.to_le_bytes());
                        }
                    }
                    Reply::Delete {
                        deleted,
                        epoch,
                        deduped,
                    } => {
                        out.extend_from_slice(&deleted.to_le_bytes());
                        out.extend_from_slice(&epoch.to_le_bytes());
                        out.push(u8::from(*deduped));
                    }
                    Reply::Maintain {
                        action_taken,
                        width,
                        live_rows,
                        deleted_rows,
                        fpr_bits,
                    } => {
                        out.push(*action_taken);
                        out.extend_from_slice(&width.to_le_bytes());
                        out.extend_from_slice(&live_rows.to_le_bytes());
                        out.extend_from_slice(&deleted_rows.to_le_bytes());
                        out.extend_from_slice(&fpr_bits.to_le_bytes());
                    }
                    Reply::Rows { total, txns } => {
                        out.extend_from_slice(&total.to_le_bytes());
                        out.extend_from_slice(&(txns.len() as u32).to_le_bytes());
                        for (tid, items) in txns {
                            out.extend_from_slice(&tid.to_le_bytes());
                            put_items(&mut out, items);
                        }
                    }
                }
            }
        }
        out
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            status::OVERLOADED => Response::Overloaded,
            status::ERR => Response::Err(get_str(&mut r)?),
            status::DISK_FULL => Response::DiskFull,
            status::BAD_FRAME => Response::BadFrame(get_str(&mut r)?),
            status::NOT_PRIMARY => Response::NotPrimary(get_str(&mut r)?),
            status::SHARD_UNAVAILABLE => {
                let shard = r.u32()?;
                Response::ShardUnavailable(shard, get_str(&mut r)?)
            }
            status::OK => Response::Ok(match r.u8()? {
                op::PING => Reply::Pong,
                op::SHUTDOWN => Reply::ShuttingDown,
                op::COUNT => Reply::Count {
                    support: r.u64()?,
                    epoch: r.u64()?,
                    rows: r.u64()?,
                },
                op::INSERT => Reply::Insert {
                    first_row: r.u64()?,
                    appended: r.u64()?,
                    epoch: r.u64()?,
                    deduped: match r.u8()? {
                        0 => false,
                        1 => true,
                        k => return Err(bad(format!("bad dedup flag {k}"))),
                    },
                },
                op::MINE => {
                    let epoch = r.u64()?;
                    let rows = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut patterns = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        let items = r.items()?;
                        let support = r.u64()?;
                        let approx = r.u8()? != 0;
                        patterns.push((items, support, approx));
                    }
                    Reply::Mine {
                        epoch,
                        rows,
                        patterns,
                    }
                }
                op::PROBE => match r.u8()? {
                    0 => Reply::Probe { txn: None },
                    1 => {
                        let tid = r.u64()?;
                        let items = r.items()?;
                        Reply::Probe {
                            txn: Some((tid, items)),
                        }
                    }
                    k => return Err(bad(format!("bad probe presence byte {k}"))),
                },
                op::STATS => Reply::Stats {
                    json: get_str(&mut r)?,
                },
                op::REPLICATE => {
                    let rows = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut entries = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let first_row = r.u64()?;
                        let n_txns = r.u32()? as usize;
                        let mut txns = Vec::with_capacity(n_txns.min(1 << 16));
                        for _ in 0..n_txns {
                            let tid = r.u64()?;
                            txns.push((tid, r.items()?));
                        }
                        let n_receipts = r.u32()? as usize;
                        let mut receipts = Vec::with_capacity(n_receipts.min(1 << 16));
                        for _ in 0..n_receipts {
                            receipts.push((r.u64()?, r.u64()?, r.u64()?));
                        }
                        let n_dels = r.u32()? as usize;
                        let mut deletes = Vec::with_capacity(n_dels.min(1 << 16));
                        for _ in 0..n_dels {
                            deletes.push(r.u64()?);
                        }
                        entries.push((first_row, txns, receipts, deletes));
                    }
                    Reply::LogEntries { rows, entries }
                }
                op::PROMOTE => Reply::Promoted {
                    epoch: r.u64()?,
                    rows: r.u64()?,
                },
                op::COUNT_MANY => {
                    let n = r.u32()? as usize;
                    let mut supports = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        supports.push(r.u64()?);
                    }
                    Reply::CountMany {
                        supports,
                        epoch: r.u64()?,
                        rows: r.u64()?,
                    }
                }
                op::SNAPSHOT_PIN => Reply::SnapshotPinned {
                    epoch: r.u64()?,
                    rows: r.u64()?,
                    width: r.u32()?,
                    hasher: get_str(&mut r)?,
                },
                op::COUNT_MANY_AT => {
                    let epoch = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut supports = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        supports.push(r.u64()?);
                    }
                    Reply::CountsAt { epoch, supports }
                }
                op::DELETE => Reply::Delete {
                    deleted: r.u64()?,
                    epoch: r.u64()?,
                    deduped: match r.u8()? {
                        0 => false,
                        1 => true,
                        k => return Err(bad(format!("bad dedup flag {k}"))),
                    },
                },
                op::MAINTAIN => Reply::Maintain {
                    action_taken: r.u8()?,
                    width: r.u32()?,
                    live_rows: r.u64()?,
                    deleted_rows: r.u64()?,
                    fpr_bits: r.u64()?,
                },
                op::ROWS => {
                    let total = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut txns = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        let tid = r.u64()?;
                        txns.push((tid, r.items()?));
                    }
                    Reply::Rows { total, txns }
                }
                k => return Err(bad(format!("unknown reply opcode {k}"))),
            }),
            k => return Err(bad(format!("unknown status byte {k}"))),
        };
        r.done()?;
        Ok(resp)
    }
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(bad(format!("frame too large: {} bytes", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
///
/// Blocking variant for clients.  The server reads frames through its own
/// interruptible loop (see `net`) so it can poll a shutdown flag.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n if n < 4 => r.read_exact(&mut len[n..])?,
        _ => {}
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(bad(format!("frame too large: {n} bytes")));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).expect("decode"), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).expect("decode"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Count {
            items: vec![3, 1, 2],
        });
        roundtrip_request(Request::Insert {
            req_id: 0,
            txns: vec![(7, vec![1, 2, 3]), (8, vec![]), (u64::MAX, vec![u32::MAX])],
        });
        roundtrip_request(Request::Insert {
            req_id: u64::MAX,
            txns: vec![(1, vec![9])],
        });
        for scheme in Scheme::ALL {
            roundtrip_request(Request::Mine {
                scheme,
                threshold: SupportThreshold::Count(42),
                threads: 4,
            });
        }
        roundtrip_request(Request::Mine {
            scheme: Scheme::Dfp,
            threshold: SupportThreshold::Fraction(0.003),
            threads: 0,
        });
        roundtrip_request(Request::Probe { row: 123_456 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Replicate {
            from_row: 0,
            from_dseq: 0,
            max_entries: 128,
        });
        roundtrip_request(Request::Replicate {
            from_row: u64::MAX,
            from_dseq: u64::MAX,
            max_entries: u32::MAX,
        });
        roundtrip_request(Request::Delete {
            req_id: 0,
            tids: vec![],
        });
        roundtrip_request(Request::Delete {
            req_id: u64::MAX,
            tids: vec![0, 7, u64::MAX],
        });
        roundtrip_request(Request::Maintain {
            action: maintain_action::PROBE_FPR,
            arg: 0,
        });
        roundtrip_request(Request::Maintain {
            action: maintain_action::COMPACT,
            arg: u64::MAX,
        });
        roundtrip_request(Request::Promote);
        roundtrip_request(Request::CountMany { itemsets: vec![] });
        roundtrip_request(Request::CountMany {
            itemsets: vec![vec![3, 1, 2], vec![], vec![u32::MAX]],
        });
        roundtrip_request(Request::SnapshotPin);
        roundtrip_request(Request::CountManyAt {
            epoch: 9,
            itemsets: vec![vec![1, 2], vec![]],
            tau: None,
        });
        roundtrip_request(Request::CountManyAt {
            epoch: u64::MAX,
            itemsets: vec![vec![u32::MAX]],
            tau: Some(17),
        });
        roundtrip_request(Request::Rows {
            epoch: 3,
            from: 0,
            limit: 4096,
        });
        roundtrip_request(Request::Rows {
            epoch: u64::MAX,
            from: u64::MAX,
            limit: u32::MAX,
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Ok(Reply::Pong));
        roundtrip_response(Response::Ok(Reply::Count {
            support: 10,
            epoch: 3,
            rows: 1000,
        }));
        roundtrip_response(Response::Ok(Reply::Insert {
            first_row: 5,
            appended: 2,
            epoch: 9,
            deduped: false,
        }));
        roundtrip_response(Response::Ok(Reply::Insert {
            first_row: 5,
            appended: 2,
            epoch: 11,
            deduped: true,
        }));
        roundtrip_response(Response::Ok(Reply::Mine {
            epoch: 2,
            rows: 50,
            patterns: vec![(vec![1], 30, false), (vec![1, 2], 11, true)],
        }));
        roundtrip_response(Response::Ok(Reply::Probe { txn: None }));
        roundtrip_response(Response::Ok(Reply::Probe {
            txn: Some((99, vec![4, 5])),
        }));
        roundtrip_response(Response::Ok(Reply::Stats {
            json: "{\"ok\":true}".into(),
        }));
        roundtrip_response(Response::Ok(Reply::ShuttingDown));
        roundtrip_response(Response::Ok(Reply::LogEntries {
            rows: 42,
            entries: vec![],
        }));
        roundtrip_response(Response::Ok(Reply::LogEntries {
            rows: 42,
            entries: vec![
                (0, vec![(1, vec![1, 2]), (2, vec![])], vec![(9, 0, 2)], vec![]),
                (2, vec![(3, vec![7])], vec![], vec![]),
                (3, vec![], vec![(11, 0, 2)], vec![0, 2]),
            ],
        }));
        roundtrip_response(Response::Ok(Reply::Delete {
            deleted: 0,
            epoch: 1,
            deduped: false,
        }));
        roundtrip_response(Response::Ok(Reply::Delete {
            deleted: u64::MAX,
            epoch: u64::MAX,
            deduped: true,
        }));
        roundtrip_response(Response::Ok(Reply::Maintain {
            action_taken: maintain_action::FOLD,
            width: 800,
            live_rows: 90,
            deleted_rows: 10,
            fpr_bits: 0.015f64.to_bits(),
        }));
        roundtrip_response(Response::Ok(Reply::Promoted { epoch: 5, rows: 99 }));
        roundtrip_response(Response::Ok(Reply::CountMany {
            supports: vec![],
            epoch: 1,
            rows: 2,
        }));
        roundtrip_response(Response::Ok(Reply::CountMany {
            supports: vec![7, 0, u64::MAX],
            epoch: 4,
            rows: 1000,
        }));
        roundtrip_response(Response::Ok(Reply::SnapshotPinned {
            epoch: 7,
            rows: 320,
            width: 1600,
            hasher: "md5/4".into(),
        }));
        roundtrip_response(Response::Ok(Reply::CountsAt {
            epoch: 7,
            supports: vec![],
        }));
        roundtrip_response(Response::Ok(Reply::CountsAt {
            epoch: 7,
            supports: vec![0, 3, u64::MAX],
        }));
        roundtrip_response(Response::Ok(Reply::Rows {
            total: 11,
            txns: vec![],
        }));
        roundtrip_response(Response::Ok(Reply::Rows {
            total: 11,
            txns: vec![(1, vec![4, 5]), (9, vec![])],
        }));
        roundtrip_response(Response::Overloaded);
        roundtrip_response(Response::Err("boom".into()));
        roundtrip_response(Response::DiskFull);
        roundtrip_response(Response::BadFrame("len 12 is not a frame".into()));
        roundtrip_response(Response::NotPrimary("127.0.0.1:7777".into()));
        roundtrip_response(Response::NotPrimary(String::new()));
        roundtrip_response(Response::ShardUnavailable(2, "connect timed out".into()));
        roundtrip_response(Response::ShardUnavailable(0, String::new()));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF]).is_err());
        // COUNT claiming 2 items but carrying 1.
        let mut bytes = vec![op::COUNT, 2, 0];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        assert!(Request::decode(&bytes).is_err());
        // Trailing garbage after a valid request.
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
        // Mine with an out-of-range fraction.
        let mut bytes = vec![op::MINE, 0, 1];
        bytes.extend_from_slice(&2.5f64.to_bits().to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        assert!(Request::decode(&bytes).is_err());
        assert!(Response::decode(&[9]).is_err());
        // DELETE reply with an out-of-range dedup flag byte.
        let mut bytes = vec![status::OK, op::DELETE];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.push(7);
        assert!(Response::decode(&bytes).is_err());
    }

    /// Seeded decode fuzz: bit-flipped, truncated, and extended mutations
    /// of every canonical encoding must decode to `Ok` or a typed error —
    /// never a panic.  (The socket-level variant, torn frames against a
    /// live server, lives in `tests/net_faults.rs`.)
    #[test]
    fn mutated_payloads_never_panic_the_decoders() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBB5_FA22);
        let requests = vec![
            Request::Ping.encode(),
            Request::Count { items: vec![1, 2, 3] }.encode(),
            Request::Insert {
                req_id: 42,
                txns: vec![(1, vec![4, 5]), (2, vec![6])],
            }
            .encode(),
            Request::Mine {
                scheme: Scheme::Dfp,
                threshold: SupportThreshold::Count(3),
                threads: 2,
            }
            .encode(),
            Request::Probe { row: 9 }.encode(),
            Request::Replicate {
                from_row: 7,
                from_dseq: 3,
                max_entries: 64,
            }
            .encode(),
            Request::Delete {
                req_id: 12,
                tids: vec![5, 6],
            }
            .encode(),
            Request::Maintain {
                action: maintain_action::AUTO,
                arg: 256,
            }
            .encode(),
            Request::Promote.encode(),
            Request::CountMany {
                itemsets: vec![vec![1, 2], vec![3]],
            }
            .encode(),
            Request::SnapshotPin.encode(),
            Request::CountManyAt {
                epoch: 4,
                itemsets: vec![vec![1, 2], vec![3]],
                tau: Some(9),
            }
            .encode(),
            Request::Rows {
                epoch: 4,
                from: 8,
                limit: 512,
            }
            .encode(),
        ];
        let responses = vec![
            Response::Ok(Reply::Insert {
                first_row: 1,
                appended: 2,
                epoch: 3,
                deduped: false,
            })
            .encode(),
            Response::Ok(Reply::Mine {
                epoch: 1,
                rows: 4,
                patterns: vec![(vec![1, 2], 3, false)],
            })
            .encode(),
            Response::Ok(Reply::Stats {
                json: "{\"a\":1}".into(),
            })
            .encode(),
            Response::Err("x".into()).encode(),
            Response::Ok(Reply::LogEntries {
                rows: 9,
                entries: vec![
                    (0, vec![(1, vec![2, 3])], vec![(5, 0, 1)], vec![]),
                    (2, vec![], vec![(8, 0, 1)], vec![1]),
                ],
            })
            .encode(),
            Response::Ok(Reply::Delete {
                deleted: 2,
                epoch: 5,
                deduped: false,
            })
            .encode(),
            Response::Ok(Reply::Maintain {
                action_taken: maintain_action::COMPACT,
                width: 512,
                live_rows: 40,
                deleted_rows: 0,
                fpr_bits: 0.01f64.to_bits(),
            })
            .encode(),
            Response::NotPrimary("addr".into()).encode(),
            Response::Ok(Reply::CountMany {
                supports: vec![1, 2, 3],
                epoch: 7,
                rows: 8,
            })
            .encode(),
            Response::Ok(Reply::SnapshotPinned {
                epoch: 3,
                rows: 64,
                width: 1024,
                hasher: "md5/4".into(),
            })
            .encode(),
            Response::Ok(Reply::Rows {
                total: 5,
                txns: vec![(1, vec![2, 3])],
            })
            .encode(),
            Response::ShardUnavailable(1, "timeout".into()).encode(),
        ];
        for _ in 0..2000 {
            let pool = if rng.random::<bool>() { &requests } else { &responses };
            let mut bytes = pool[rng.random_range(0..pool.len())].clone();
            match rng.random_range(0..4u32) {
                0 if !bytes.is_empty() => {
                    // Flip a random bit.
                    let at = rng.random_range(0..bytes.len());
                    bytes[at] ^= 1 << rng.random_range(0..8u32);
                }
                1 => {
                    // Truncate.
                    bytes.truncate(rng.random_range(0..bytes.len() + 1));
                }
                2 => {
                    // Extend with garbage.
                    for _ in 0..rng.random_range(1..16usize) {
                        bytes.push((rng.random::<u32>() & 0xFF) as u8);
                    }
                }
                _ => {
                    // Pure garbage of random length.
                    bytes = (0..rng.random_range(0..64usize))
                        .map(|_| (rng.random::<u32>() & 0xFF) as u8)
                        .collect();
                }
            }
            // Ok or Err both fine; panicking or looping forever is not.
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("eof"), None);

        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }
}
