//! Server observability: lock-free per-endpoint counters and log2-bucketed
//! histograms, rendered as the JSON document the `stats` endpoint serves.
//!
//! Everything here is plain atomics — recording a sample on the request
//! path is a handful of relaxed fetch-adds, cheap enough to leave on
//! unconditionally.  Histograms bucket by powers of two (bucket *i* holds
//! values in `[2^(i-1), 2^i)`), which gives ~2× resolution over nine
//! orders of magnitude in 64 slots: plenty for microsecond latencies and
//! batch sizes alike.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of `u64` samples (latencies in µs, batch
/// sizes, queue depths — anything positive and heavy-tailed).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(value: u64) -> usize {
    // 0 → bucket 0; otherwise 1 + floor(log2(value)), capped at the top.
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `q`-th sample (so p99 reads as "99% of samples were
    /// at most this").  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 is just {0}).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        self.max()
    }

    /// Renders the summary (count/mean/p50/p99/max) as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
            self.count(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            self.max()
        )
    }
}

/// Counters for one wire endpoint.
#[derive(Default)]
pub struct Endpoint {
    /// Requests that reached the handler.
    pub requests: AtomicU64,
    /// Requests that returned an error response.
    pub errors: AtomicU64,
    /// Handler latency in microseconds.
    pub latency_us: Histogram,
}

impl Endpoint {
    fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"errors\":{},\"latency_us\":{}}}",
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.latency_us.to_json()
        )
    }
}

/// All server metrics, shared between connection handlers, the committer
/// thread, and the `stats` endpoint.
#[derive(Default)]
pub struct ServerMetrics {
    /// Per-endpoint request counters, indexed by opcode name.
    pub ping: Endpoint,
    /// `count` endpoint.
    pub count: Endpoint,
    /// `insert` endpoint (latency includes queue wait + group commit).
    pub insert: Endpoint,
    /// `mine` endpoint.
    pub mine: Endpoint,
    /// `probe` endpoint.
    pub probe: Endpoint,
    /// `stats` endpoint.
    pub stats: Endpoint,
    /// `replicate` endpoint (followers pulling log entries).
    pub replicate: Endpoint,
    /// `promote` endpoint.
    pub promote: Endpoint,
    /// `count_many` endpoint (batched counting; latency covers the whole
    /// batch).
    pub count_many: Endpoint,
    /// `delete` endpoint (tombstone deletes by TID).
    pub delete: Endpoint,
    /// `maintain` endpoint (FPR probes, compactions, folds).
    pub maintain: Endpoint,
    /// Itemsets per `count_many` batch.
    pub count_many_batch: Histogram,
    /// Requests rejected by admission control.
    pub overloaded: AtomicU64,
    /// Inserts answered from the exactly-once window instead of appending
    /// (each one is a detected client retry).
    pub dedup_hits: AtomicU64,
    /// Group commits rejected because the disk was out of space.
    pub disk_full: AtomicU64,
    /// Frames that failed to parse (torn, truncated, or corrupted).
    pub frame_errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Current depth of the ingest queue (gauge).
    pub queue_depth: AtomicU64,
    /// Transactions per group commit.
    pub batch_size: Histogram,
    /// Group-commit latency in microseconds (append + flush + publish).
    pub commit_us: Histogram,
    /// Writes rejected on a follower with the typed `NotPrimary` status.
    pub not_primary: AtomicU64,
    /// Role transitions follower → primary (manual or automatic).
    pub promotions: AtomicU64,
    /// Rows the primary has committed beyond what this follower has
    /// applied, sampled after each replication poll (gauge; 0 on a
    /// primary).
    pub replication_lag_rows: AtomicU64,
    /// Batches a follower applied through its commit path.
    pub follower_applied_batches: AtomicU64,
    /// Latency of one follower apply (commit of one pulled batch), µs.
    pub follower_apply_us: Histogram,
    /// Rows applied per replication poll round-trip.
    pub follower_pull_rows: Histogram,
    /// Wipe-resyncs this follower performed after the primary's log could
    /// no longer serve its cursor (e.g. the primary compacted).
    pub follower_resyncs: AtomicU64,
    /// Pins dropped from the snapshot pin table — LRU overflow plus
    /// invalidation after a compaction/fold swapped the files out from
    /// under them.
    pub pin_evictions: AtomicU64,
    /// Requests that named a pinned epoch no longer in the table (the
    /// caller re-pins and retries).
    pub stale_pins: AtomicU64,
    /// Maintenance policy evaluations (manual `AUTO` requests plus the
    /// background thread's ticks).
    pub maintenance_runs: AtomicU64,
    /// Compactions performed by maintenance (policy or explicit).
    pub maintenance_compactions: AtomicU64,
    /// Folds performed by maintenance (policy or explicit).
    pub maintenance_folds: AtomicU64,
    /// The most recent measured false-positive rate, stored as `f64`
    /// bits (gauge; 0.0 until the first probe).
    pub last_measured_fpr_bits: AtomicU64,
}

impl ServerMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        ServerMetrics::default()
    }

    /// The endpoint slot for `opcode`, if it is a tracked endpoint.
    pub fn endpoint(&self, opcode: u8) -> Option<&Endpoint> {
        use crate::proto::op;
        match opcode {
            op::PING => Some(&self.ping),
            op::COUNT => Some(&self.count),
            op::INSERT => Some(&self.insert),
            op::MINE => Some(&self.mine),
            op::PROBE => Some(&self.probe),
            op::STATS => Some(&self.stats),
            op::REPLICATE => Some(&self.replicate),
            op::PROMOTE => Some(&self.promote),
            op::COUNT_MANY => Some(&self.count_many),
            op::DELETE => Some(&self.delete),
            op::MAINTAIN => Some(&self.maintain),
            _ => None,
        }
    }

    /// Renders the metrics (plus caller-supplied engine fields) as JSON.
    ///
    /// `extra` is a list of already-rendered `"key":value` fragments the
    /// engine contributes (epoch, rows, storage counters).
    pub fn to_json(&self, extra: &[String]) -> String {
        let mut fields = vec![
            format!("\"ping\":{}", self.ping.to_json()),
            format!("\"count\":{}", self.count.to_json()),
            format!("\"insert\":{}", self.insert.to_json()),
            format!("\"mine\":{}", self.mine.to_json()),
            format!("\"probe\":{}", self.probe.to_json()),
            format!("\"stats\":{}", self.stats.to_json()),
            format!("\"replicate\":{}", self.replicate.to_json()),
            format!("\"promote\":{}", self.promote.to_json()),
            format!("\"count_many\":{}", self.count_many.to_json()),
            format!("\"delete\":{}", self.delete.to_json()),
            format!("\"maintain\":{}", self.maintain.to_json()),
            format!(
                "\"count_many_batch\":{}",
                self.count_many_batch.to_json()
            ),
            format!("\"overloaded\":{}", self.overloaded.load(Ordering::Relaxed)),
            format!("\"dedup_hits\":{}", self.dedup_hits.load(Ordering::Relaxed)),
            format!("\"disk_full\":{}", self.disk_full.load(Ordering::Relaxed)),
            format!(
                "\"frame_errors\":{}",
                self.frame_errors.load(Ordering::Relaxed)
            ),
            format!(
                "\"connections\":{}",
                self.connections.load(Ordering::Relaxed)
            ),
            format!(
                "\"queue_depth\":{}",
                self.queue_depth.load(Ordering::Relaxed)
            ),
            format!("\"batch_size\":{}", self.batch_size.to_json()),
            format!("\"commit_us\":{}", self.commit_us.to_json()),
            format!(
                "\"not_primary\":{}",
                self.not_primary.load(Ordering::Relaxed)
            ),
            format!("\"promotions\":{}", self.promotions.load(Ordering::Relaxed)),
            format!(
                "\"replication_lag_rows\":{}",
                self.replication_lag_rows.load(Ordering::Relaxed)
            ),
            format!(
                "\"follower_applied_batches\":{}",
                self.follower_applied_batches.load(Ordering::Relaxed)
            ),
            format!(
                "\"follower_apply_us\":{}",
                self.follower_apply_us.to_json()
            ),
            format!(
                "\"follower_pull_rows\":{}",
                self.follower_pull_rows.to_json()
            ),
            format!(
                "\"follower_resyncs\":{}",
                self.follower_resyncs.load(Ordering::Relaxed)
            ),
            format!(
                "\"pin_evictions\":{}",
                self.pin_evictions.load(Ordering::Relaxed)
            ),
            format!("\"stale_pins\":{}", self.stale_pins.load(Ordering::Relaxed)),
            format!(
                "\"maintenance_runs\":{}",
                self.maintenance_runs.load(Ordering::Relaxed)
            ),
            format!(
                "\"maintenance_compactions\":{}",
                self.maintenance_compactions.load(Ordering::Relaxed)
            ),
            format!(
                "\"maintenance_folds\":{}",
                self.maintenance_folds.load(Ordering::Relaxed)
            ),
            format!(
                "\"last_measured_fpr\":{:.6}",
                f64::from_bits(self.last_measured_fpr_bits.load(Ordering::Relaxed))
            ),
        ];
        fields.extend(extra.iter().cloned());
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_stats_are_sane() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.mean(), h.quantile(0.99), h.max()), (0, 0, 0, 0));
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.mean(), 221);
        assert_eq!(h.max(), 1000);
        // p50 of {1,2,3,100,1000} lands in the bucket holding 3 → bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the bucket holding 1000 → bound 1023.
        assert_eq!(h.quantile(0.99), 1023);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let m = ServerMetrics::new();
        m.count.requests.fetch_add(2, Ordering::Relaxed);
        m.count.latency_us.record(17);
        let json = m.to_json(&[format!("\"epoch\":{}", 4)]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"count\":{\"requests\":2"));
        assert!(json.contains("\"epoch\":4"));
        // Balanced braces (a cheap structural check without a parser).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn endpoint_lookup_covers_tracked_opcodes() {
        use crate::proto::op;
        let m = ServerMetrics::new();
        for opc in [
            op::PING,
            op::COUNT,
            op::INSERT,
            op::MINE,
            op::PROBE,
            op::STATS,
            op::REPLICATE,
            op::PROMOTE,
            op::COUNT_MANY,
            op::DELETE,
            op::MAINTAIN,
        ] {
            assert!(m.endpoint(opc).is_some());
        }
        assert!(m.endpoint(op::SHUTDOWN).is_none());
        assert!(m.endpoint(0xFF).is_none());
    }
}
