//! The transport layer: TCP and Unix-socket listeners over any
//! [`RequestHandler`] — a single [`Engine`] or a sharded router.
//!
//! Accept loops run non-blocking and poll a shutdown flag between accept
//! attempts; connection handlers run blocking with a short read timeout
//! that doubles as their shutdown poll tick.  Frame reads are
//! *interruptible but not lossy*: a timeout mid-frame keeps the partial
//! bytes and resumes, so a slow client never desyncs the stream — the
//! handler only gives up between frames (or when the deadline for one
//! frame's remainder passes [`REQUEST_DEADLINE`]).
//!
//! A frame that *arrives* but does not parse — oversized length prefix,
//! truncated payload, flipped bits — gets the typed `BadFrame` response
//! and then the connection is **closed**: once a length-prefixed stream
//! has produced garbage there is no trustworthy way to find the next
//! frame boundary, so the server never tries to re-sync past corruption.
//! Other connections (and the server itself) are unaffected.
//!
//! **Graceful drain**: [`ServerHandle::shutdown`] (or a client's
//! `shutdown` request) flips the flag; accept loops stop admitting,
//! handlers finish their in-flight request and close after answering, the
//! engine's committer flushes every queued batch, and
//! [`ServerHandle::join`] returns once all of that has happened.  Nothing
//! in flight is dropped: every accepted request gets its response before
//! its connection closes.

use crate::engine::Engine;
use crate::metrics::ServerMetrics;
use crate::proto::{self, Request, Response};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poll tick for accept loops and idle connection reads.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Once a frame has *started* arriving, its remainder must land within
/// this deadline or the connection is dropped (a stalled or malicious
/// client cannot pin a handler thread forever).
const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// What the transport needs from the thing it fronts — the seam that
/// lets the same listeners, framing, drain and metrics accounting serve
/// a single [`Engine`] or a sharded router of many engines.
pub trait RequestHandler: Send + Sync + 'static {
    /// Serves one decoded request (recording its endpoint metrics).
    fn handle(&self, req: &Request) -> Response;

    /// True once a drain has begun: accept loops stop admitting and
    /// handlers close after their in-flight response.
    fn is_draining(&self) -> bool;

    /// Starts a graceful drain (idempotent).
    fn begin_drain(&self);

    /// Blocks until background work (committers, appliers) has exited.
    /// Idempotent; called once by [`ServerHandle::join`].
    fn join(&self);

    /// The transport-level metrics sink (connections, frame errors).
    fn metrics(&self) -> &Arc<ServerMetrics>;
}

impl RequestHandler for Engine {
    fn handle(&self, req: &Request) -> Response {
        Engine::handle(self, req)
    }

    fn is_draining(&self) -> bool {
        Engine::is_draining(self)
    }

    fn begin_drain(&self) {
        Engine::begin_drain(self)
    }

    fn join(&self) {
        Engine::join(self)
    }

    fn metrics(&self) -> &Arc<ServerMetrics> {
        Engine::metrics(self)
    }
}

/// Where a server listens.
#[derive(Debug, Clone, Default)]
pub struct Bind {
    /// TCP address (`host:port`; port 0 picks a free port).
    pub tcp: Option<String>,
    /// Unix socket path (removed and re-created on bind).
    pub unix: Option<PathBuf>,
}

/// A running server: its listeners, handler threads, and shutdown flag.
///
/// Generic over the [`RequestHandler`] it fronts; defaults to the
/// single-deployment [`Engine`], so existing call sites read unchanged.
pub struct ServerHandle<H: RequestHandler = Engine> {
    engine: Arc<H>,
    shutdown: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    accepters: Vec<JoinHandle<()>>,
}

impl<H: RequestHandler> ServerHandle<H> {
    /// The bound TCP address, when a TCP listener was requested.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path, when one was requested.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The engine (request handler) this server fronts.
    pub fn engine(&self) -> &Arc<H> {
        &self.engine
    }

    /// Signals shutdown: stop accepting, drain ingest, finish in-flight
    /// requests.  Returns immediately; pair with [`ServerHandle::join`].
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.engine.begin_drain();
    }

    /// Blocks until every accept loop, handler, and the committer have
    /// exited.  Implies [`ServerHandle::shutdown`].
    pub fn join(mut self) {
        self.shutdown();
        for h in self.accepters.drain(..) {
            h.join().ok();
        }
        self.engine.join();
        if let Some(path) = &self.unix_path {
            std::fs::remove_file(path).ok();
        }
    }

    /// True once shutdown has been signalled (by this handle or by a
    /// client's `shutdown` request).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || self.engine.is_draining()
    }

    /// Runs until shutdown is signalled, polling at the accept tick.
    /// Convenience for `bbs serve`, which has nothing else to do on its
    /// main thread.
    pub fn wait(self) {
        while !self.is_shutting_down() {
            std::thread::sleep(POLL_TICK);
        }
        self.join();
    }

    /// [`ServerHandle::wait`] that also returns when `stop` flips — the
    /// hook `bbs serve` uses to turn SIGTERM/SIGINT into a graceful
    /// drain (queued batches commit, files sync, then exit).
    pub fn wait_with_stop(self, stop: &AtomicBool) {
        while !self.is_shutting_down() && !stop.load(Ordering::Acquire) {
            std::thread::sleep(POLL_TICK);
        }
        self.join();
    }
}

/// Binds the requested listeners and starts serving `engine`.
///
/// At least one of `bind.tcp` / `bind.unix` must be set.
pub fn serve<H: RequestHandler>(engine: Arc<H>, bind: &Bind) -> io::Result<ServerHandle<H>> {
    if bind.tcp.is_none() && bind.unix.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no listener requested: set a TCP address or a Unix socket path",
        ));
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut accepters = Vec::new();
    let mut tcp_addr = None;

    if let Some(addr) = &bind.tcp {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        tcp_addr = Some(listener.local_addr()?);
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        accepters.push(
            std::thread::Builder::new()
                .name("bbs-accept-tcp".into())
                .spawn(move || {
                    accept_loop(&shutdown, &engine, || match listener.accept() {
                        Ok((s, _)) => {
                            // Replies are small frames; without NODELAY the
                            // Nagle/delayed-ACK interaction adds ~40 ms to
                            // every request round-trip.
                            s.set_nodelay(true).ok();
                            Some(Ok(Conn::Tcp(s)))
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    })
                })?,
        );
    }

    let mut unix_path = None;
    if let Some(path) = &bind.unix {
        // A stale socket file from a previous run refuses to bind.
        std::fs::remove_file(path).ok();
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        unix_path = Some(path.clone());
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        accepters.push(
            std::thread::Builder::new()
                .name("bbs-accept-unix".into())
                .spawn(move || {
                    accept_loop(&shutdown, &engine, || match listener.accept() {
                        Ok((s, _)) => Some(Ok(Conn::Unix(s))),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => None,
                        Err(e) => Some(Err(e)),
                    })
                })?,
        );
    }

    Ok(ServerHandle {
        engine,
        shutdown,
        tcp_addr,
        unix_path,
        accepters,
    })
}

/// A connected client stream, TCP or Unix.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(t),
            Conn::Unix(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Generic accept loop: polls `try_accept` until shutdown, spawning one
/// handler thread per connection and joining them all before returning.
fn accept_loop<H: RequestHandler>(
    shutdown: &Arc<AtomicBool>,
    engine: &Arc<H>,
    try_accept: impl Fn() -> Option<io::Result<Conn>>,
) {
    let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    while !shutdown.load(Ordering::Acquire) && !engine.is_draining() {
        match try_accept() {
            None => std::thread::sleep(POLL_TICK),
            Some(Err(_)) => std::thread::sleep(POLL_TICK),
            Some(Ok(conn)) => {
                engine
                    .metrics()
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(engine);
                let shutdown = Arc::clone(shutdown);
                if let Ok(h) = std::thread::Builder::new()
                    .name("bbs-conn".into())
                    .spawn(move || handle_connection(conn, &engine, &shutdown))
                {
                    let mut hs = handlers.lock().unwrap_or_else(|e| e.into_inner());
                    // Reap finished handlers opportunistically so a
                    // long-lived server doesn't accumulate join handles.
                    hs.retain(|h| !h.is_finished());
                    hs.push(h);
                }
            }
        }
    }
    let hs: Vec<_> = handlers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
        .collect();
    for h in hs {
        h.join().ok();
    }
}

/// Reads exactly `buf.len()` bytes, tolerating read-timeout ticks.
///
/// Returns `Ok(false)` on clean EOF *before the first byte*; an EOF or a
/// blown deadline mid-buffer is an error.  `give_up` is consulted at
/// every tick — but only **between** frames (`deadline == None`); once a
/// frame has started we finish reading it regardless, so a shutdown never
/// truncates a request mid-parse.
fn read_full(
    conn: &mut Conn,
    buf: &mut [u8],
    give_up: &dyn Fn() -> bool,
    started: Option<Instant>,
) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && started.is_none() {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                match started {
                    // Between frames: idle tick — bail if shutting down.
                    None if filled == 0 => {
                        if give_up() {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                "server shutting down",
                            ));
                        }
                    }
                    // Mid-frame: enforce the per-request deadline.
                    _ => {
                        let t0 = started.unwrap_or_else(Instant::now);
                        if t0.elapsed() > REQUEST_DEADLINE {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "request frame did not arrive within the deadline",
                            ));
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if filled > 0 && started.is_none() {
            // The frame has started; switch to deadline accounting.
            return read_full_rest(conn, buf, filled);
        }
    }
    Ok(true)
}

fn read_full_rest(conn: &mut Conn, buf: &mut [u8], mut filled: usize) -> io::Result<bool> {
    let started = Instant::now();
    while filled < buf.len() {
        match conn.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if started.elapsed() > REQUEST_DEADLINE {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request frame did not arrive within the deadline",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Serves one connection until EOF, error, or shutdown.
fn handle_connection<H: RequestHandler>(
    mut conn: Conn,
    engine: &Arc<H>,
    shutdown: &Arc<AtomicBool>,
) {
    if conn.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let give_up = || shutdown.load(Ordering::Acquire) || engine.is_draining();
    loop {
        // Frame header (interruptible while idle).
        let mut len = [0u8; 4];
        match read_full(&mut conn, &mut len, &give_up, None) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let n = u32::from_le_bytes(len) as usize;
        if n > proto::MAX_FRAME {
            // An oversized header usually means the stream is desynced or
            // the bytes were corrupted in transit.  Answer with the typed
            // rejection and close: there is no way to re-synchronise a
            // length-prefixed stream whose lengths can't be trusted.
            engine
                .metrics()
                .frame_errors
                .fetch_add(1, Ordering::Relaxed);
            let resp = Response::BadFrame(format!("frame too large: {n} bytes"));
            proto::write_frame(&mut conn, &resp.encode()).ok();
            return;
        }
        let mut payload = vec![0u8; n];
        if read_full(&mut conn, &mut payload, &give_up, Some(Instant::now())).is_err() {
            return;
        }
        let req = match Request::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Same reasoning as above: a payload that doesn't parse
                // means framing can no longer be trusted — reply typed,
                // then close rather than guess at the next boundary.
                engine
                    .metrics()
                    .frame_errors
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::BadFrame(format!("bad request: {e}"));
                proto::write_frame(&mut conn, &resp.encode()).ok();
                return;
            }
        };
        let was_shutdown = matches!(req, Request::Shutdown);
        let resp = engine.handle(&req);
        if was_shutdown {
            shutdown.store(true, Ordering::Release);
        }
        if proto::write_frame(&mut conn, &resp.encode()).is_err() {
            return;
        }
        if give_up() {
            // Drain semantics: the in-flight request was answered; no new
            // requests are read on this connection.
            return;
        }
    }
}
