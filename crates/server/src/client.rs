//! Client library for the `bbs-server` wire protocol.
//!
//! One [`Client`] wraps one connection (TCP or Unix socket) and offers a
//! typed method per endpoint.  Requests are synchronous: send one frame,
//! read one frame.  Server-side overload surfaces as the typed
//! [`ClientError::Overloaded`] so callers can implement retry/backoff
//! without string-matching error messages.

use crate::proto::{self, Reply, Request, Response};
use bbs_core::Scheme;
use bbs_tdb::SupportThreshold;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, framing).
    Io(io::Error),
    /// The server's admission control rejected the request; retry later.
    Overloaded,
    /// The server executed the request and reported an error.
    Server(String),
    /// The server answered with a reply that does not match the request.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Overloaded => write!(f, "server overloaded; retry later"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The `count` reply: a support estimate stamped with its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountReply {
    /// The BBS support estimate.
    pub support: u64,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Rows visible to that snapshot.
    pub rows: u64,
}

/// The `insert` reply: where the batch landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReply {
    /// First row of the batch.
    pub first_row: u64,
    /// Rows appended.
    pub appended: u64,
    /// Epoch whose snapshot first shows the batch.
    pub epoch: u64,
}

/// The `mine` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MineReply {
    /// Epoch of the mined snapshot.
    pub epoch: u64,
    /// Rows the mine covered.
    pub rows: u64,
    /// `(items, support, approximate)` per frequent pattern, sorted.
    pub patterns: Vec<(Vec<u32>, u64, bool)>,
}

/// One connection to a `bbs-server`.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: Stream::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> ClientResult<Client> {
        Ok(Client {
            stream: Stream::Unix(UnixStream::connect(path)?),
        })
    }

    /// Bounds how long any single call waits for its response frame
    /// (`None` = wait forever).
    pub fn set_timeout(&mut self, t: Option<Duration>) -> ClientResult<()> {
        match &self.stream {
            Stream::Tcp(s) => s.set_read_timeout(t)?,
            Stream::Unix(s) => s.set_read_timeout(t)?,
        }
        Ok(())
    }

    fn call(&mut self, req: &Request) -> ClientResult<Reply> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let payload = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match Response::decode(&payload)? {
            Response::Ok(reply) => Ok(reply),
            Response::Overloaded => Err(ClientError::Overloaded),
            Response::Err(msg) => Err(ClientError::Server(msg)),
        }
    }

    fn mismatch<T>(reply: Reply) -> ClientResult<T> {
        Err(ClientError::Protocol(format!(
            "reply does not match request: {reply:?}"
        )))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Self::mismatch(other),
        }
    }

    /// `CountItemSet` for `items` against the latest snapshot.
    pub fn count(&mut self, items: &[u32]) -> ClientResult<CountReply> {
        let req = Request::Count {
            items: items.to_vec(),
        };
        match self.call(&req)? {
            Reply::Count {
                support,
                epoch,
                rows,
            } => Ok(CountReply {
                support,
                epoch,
                rows,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Appends transactions through the server's group-commit queue.
    pub fn insert(&mut self, txns: &[(u64, Vec<u32>)]) -> ClientResult<InsertReply> {
        let req = Request::Insert {
            txns: txns.to_vec(),
        };
        match self.call(&req)? {
            Reply::Insert {
                first_row,
                appended,
                epoch,
            } => Ok(InsertReply {
                first_row,
                appended,
                epoch,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Mines every frequent pattern of the latest snapshot.
    pub fn mine(
        &mut self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: u16,
    ) -> ClientResult<MineReply> {
        let req = Request::Mine {
            scheme,
            threshold,
            threads,
        };
        match self.call(&req)? {
            Reply::Mine {
                epoch,
                rows,
                patterns,
            } => Ok(MineReply {
                epoch,
                rows,
                patterns,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Fetches the transaction at `row` (`None` past the snapshot's end).
    pub fn probe(&mut self, row: u64) -> ClientResult<Option<(u64, Vec<u32>)>> {
        match self.call(&Request::Probe { row })? {
            Reply::Probe { txn } => Ok(txn),
            other => Self::mismatch(other),
        }
    }

    /// Fetches the server's metrics document (JSON).
    pub fn stats(&mut self) -> ClientResult<String> {
        match self.call(&Request::Stats)? {
            Reply::Stats { json } => Ok(json),
            other => Self::mismatch(other),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Self::mismatch(other),
        }
    }
}
