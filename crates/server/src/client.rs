//! Client library for the `bbs-server` wire protocol.
//!
//! One [`Client`] wraps one connection (TCP or Unix socket) and offers a
//! typed method per endpoint.  Requests are synchronous: send one frame,
//! read one frame.  Server-side conditions surface as typed
//! [`ClientError`] variants so callers can implement retry/backoff
//! without string-matching error messages.
//!
//! # Retrying safely
//!
//! [`RetryClient`] layers a real retry policy on top: exponential
//! backoff with jitter, a bounded attempt budget, and automatic
//! reconnect after transport failures.  Every insert is stamped with a
//! process-unique nonzero request ID that is **reused across retries of
//! that insert** — the server's exactly-once window turns a retry of an
//! already-committed batch into a dedup hit (the original receipt comes
//! back with `deduped = true`) instead of a duplicate append.  That is
//! what makes it safe for the policy to retry after a timeout or a
//! dropped connection, where the client cannot know whether the commit
//! landed.

use crate::proto::{self, Reply, Request, Response};
use bbs_core::Scheme;
use bbs_tdb::SupportThreshold;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, framing).
    Io(io::Error),
    /// The server's admission control rejected the request; retry later.
    Overloaded,
    /// The server's disk is out of space; nothing was appended.  Safe to
    /// retry with the same request ID once space returns.
    DiskFull,
    /// The server could not parse the frame it received (corrupted in
    /// transit) and is closing the connection.
    BadFrame(String),
    /// The server is a replication follower and rejected a write; the
    /// string is the primary's address (may be empty when unknown).
    NotPrimary(String),
    /// A coordinator could not reach the named shard: the scatter was
    /// aborted rather than returning a silently-wrong partial total.
    ShardUnavailable(u32, String),
    /// The server executed the request and reported an error.
    Server(String),
    /// The server answered with a reply that does not match the request.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Overloaded => write!(f, "server overloaded; retry later"),
            ClientError::DiskFull => write!(f, "server disk full; retry once space returns"),
            ClientError::BadFrame(msg) => write!(f, "server rejected frame: {msg}"),
            ClientError::NotPrimary(addr) if addr.is_empty() => {
                write!(f, "server is a follower; writes go to the primary")
            }
            ClientError::NotPrimary(addr) => {
                write!(f, "server is a follower; writes go to the primary at {addr}")
            }
            ClientError::ShardUnavailable(shard, msg) => {
                write!(f, "shard {shard} unavailable: {msg}")
            }
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when retrying the same request may succeed.
    ///
    /// Transport failures (`Io`), admission rejections (`Overloaded`),
    /// out-of-space commits (`DiskFull`) and frames garbled in transit
    /// (`BadFrame`) are all transient: the request itself is fine, and —
    /// because inserts carry request IDs — retrying one that secretly
    /// committed is answered from the exactly-once window, not appended
    /// again.  `Server` and `Protocol` errors are terminal: the server
    /// understood the request and definitively failed it, or the
    /// conversation itself is broken in a way reconnecting won't fix.
    /// `NotPrimary` is retryable too: during a failover the rejecting
    /// follower is often the node *about to be promoted*, so a client
    /// that keeps re-sending (same request IDs) converges as soon as the
    /// promotion lands — and the exactly-once window answers any batch
    /// that already committed on the old primary.  `ShardUnavailable` is
    /// retryable for the same reason `Io` is: the coordinator may fail
    /// over the dead shard to its follower between attempts.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_)
            | ClientError::Overloaded
            | ClientError::DiskFull
            | ClientError::BadFrame(_)
            | ClientError::NotPrimary(_)
            | ClientError::ShardUnavailable(_, _) => true,
            ClientError::Server(_) | ClientError::Protocol(_) => false,
        }
    }

    /// True when the connection should be dropped and re-dialed before
    /// the next attempt (the stream state can no longer be trusted).
    fn poisons_connection(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::BadFrame(_))
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// The `count` reply: a support estimate stamped with its snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountReply {
    /// The BBS support estimate.
    pub support: u64,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Rows visible to that snapshot.
    pub rows: u64,
}

/// The `count_many` reply: one support per query itemset, in request
/// order, all answered from the same snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountManyReply {
    /// BBS support estimates, one per itemset (semantics as in
    /// [`CountReply::support`]).
    pub supports: Vec<u64>,
    /// Epoch of the snapshot that answered every query.
    pub epoch: u64,
    /// Rows visible to that snapshot.
    pub rows: u64,
}

/// The `insert` reply: where the batch landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertReply {
    /// First row of the batch.
    pub first_row: u64,
    /// Rows appended.
    pub appended: u64,
    /// Epoch whose snapshot shows the batch.
    pub epoch: u64,
    /// True when the server answered from its exactly-once window: the
    /// batch was already durable from an earlier attempt.
    pub deduped: bool,
}

/// One `replicate` pull: the primary's row count plus the log entries
/// covering the requested row onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicateReply {
    /// Rows committed on the server at the time of the pull (the
    /// follower's lag is `rows - locally_applied_rows`).
    pub rows: u64,
    /// Entries in log order: `(first_row, txns, receipts, deletes)` in
    /// the wire shape (see [`crate::proto::LogEntry`]).
    pub entries: Vec<proto::LogEntry>,
}

/// The `delete` reply: how many rows this request tombstoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeleteReply {
    /// Live rows tombstoned (0 when every TID was absent or already
    /// dead).
    pub deleted: u64,
    /// Epoch whose snapshot first masks them.
    pub epoch: u64,
    /// True when the server answered from its exactly-once window: the
    /// delete was already durable from an earlier attempt.
    pub deduped: bool,
}

/// The `maintain` reply: what the server did and the index health after.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintainReply {
    /// The [`proto::maintain_action`] actually performed.
    pub action_taken: u8,
    /// Slice width after the action.
    pub width: u32,
    /// Live rows after the action.
    pub live_rows: u64,
    /// Tombstoned rows remaining after the action.
    pub deleted_rows: u64,
    /// Measured false-positive rate (sampled before any fold/compact the
    /// action performed).
    pub fpr: f64,
}

/// The `promote` reply: the epoch and rows the new primary serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromoteReply {
    /// Epoch of the promoted server's latest snapshot.
    pub epoch: u64,
    /// Rows that snapshot serves.
    pub rows: u64,
}

/// The `snapshot_pin` reply: the pinned epoch plus the identity facts a
/// coordinator checks before trusting cross-shard sums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinReply {
    /// The pinned epoch; pass it to `count_many_at` / `rows`.
    pub epoch: u64,
    /// Rows visible to the pinned snapshot.
    pub rows: u64,
    /// Signature width of the serving deployment.
    pub width: u32,
    /// Identity of the item-hash family (e.g. `md5/4`).
    pub hasher: String,
}

/// The `count_many_at` reply: supports in request order, all answered
/// from the pinned epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountsAtReply {
    /// The epoch that answered (echo of the request's pin).
    pub epoch: u64,
    /// Supports, one per itemset in request order.
    pub supports: Vec<u64>,
}

/// One `rows` pull: a chunk of the pinned snapshot's transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowsReply {
    /// Total rows in the pinned snapshot (the stream ends when
    /// `from + txns.len() == total`).
    pub total: u64,
    /// `(tid, items)` per row, in row order starting at the requested
    /// `from`.
    pub txns: Vec<(u64, Vec<u32>)>,
}

/// The `mine` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MineReply {
    /// Epoch of the mined snapshot.
    pub epoch: u64,
    /// Rows the mine covered.
    pub rows: u64,
    /// `(items, support, approximate)` per frequent pattern, sorted.
    pub patterns: Vec<(Vec<u32>, u64, bool)>,
}

/// One connection to a `bbs-server`.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: Stream::Tcp(stream),
        })
    }

    /// Connects over a Unix socket.
    pub fn connect_unix(path: impl AsRef<Path>) -> ClientResult<Client> {
        Ok(Client {
            stream: Stream::Unix(UnixStream::connect(path)?),
        })
    }

    /// Bounds how long any single call waits for its response frame
    /// (`None` = wait forever).
    pub fn set_timeout(&mut self, t: Option<Duration>) -> ClientResult<()> {
        match &self.stream {
            Stream::Tcp(s) => s.set_read_timeout(t)?,
            Stream::Unix(s) => s.set_read_timeout(t)?,
        }
        Ok(())
    }

    fn call(&mut self, req: &Request) -> ClientResult<Reply> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let payload = proto::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match Response::decode(&payload)? {
            Response::Ok(reply) => Ok(reply),
            Response::Overloaded => Err(ClientError::Overloaded),
            Response::DiskFull => Err(ClientError::DiskFull),
            Response::BadFrame(msg) => Err(ClientError::BadFrame(msg)),
            Response::NotPrimary(addr) => Err(ClientError::NotPrimary(addr)),
            Response::ShardUnavailable(shard, msg) => {
                Err(ClientError::ShardUnavailable(shard, msg))
            }
            Response::Err(msg) => Err(ClientError::Server(msg)),
        }
    }

    fn mismatch<T>(reply: Reply) -> ClientResult<T> {
        Err(ClientError::Protocol(format!(
            "reply does not match request: {reply:?}"
        )))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Self::mismatch(other),
        }
    }

    /// `CountItemSet` for `items` against the latest snapshot.
    pub fn count(&mut self, items: &[u32]) -> ClientResult<CountReply> {
        let req = Request::Count {
            items: items.to_vec(),
        };
        match self.call(&req)? {
            Reply::Count {
                support,
                epoch,
                rows,
            } => Ok(CountReply {
                support,
                epoch,
                rows,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Batched `CountItemSet`: all itemsets are answered from **one**
    /// snapshot via the server's shared-scan executor, with supports in
    /// request order — identical to issuing [`Client::count`] per itemset,
    /// but one round-trip and one index walk for the whole batch.
    pub fn count_many(&mut self, itemsets: &[&[u32]]) -> ClientResult<CountManyReply> {
        let req = Request::CountMany {
            itemsets: itemsets.iter().map(|s| s.to_vec()).collect(),
        };
        match self.call(&req)? {
            Reply::CountMany {
                supports,
                epoch,
                rows,
            } => Ok(CountManyReply {
                supports,
                epoch,
                rows,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Appends transactions through the server's group-commit queue,
    /// without enrolling in the exactly-once window (request ID 0).
    pub fn insert(&mut self, txns: &[(u64, Vec<u32>)]) -> ClientResult<InsertReply> {
        self.insert_with_id(0, txns)
    }

    /// [`Client::insert`] with an explicit request ID (`0` opts out of
    /// dedup).  Reusing the same nonzero ID on a retry is what makes the
    /// retry safe.
    pub fn insert_with_id(
        &mut self,
        req_id: u64,
        txns: &[(u64, Vec<u32>)],
    ) -> ClientResult<InsertReply> {
        let req = Request::Insert {
            req_id,
            txns: txns.to_vec(),
        };
        match self.call(&req)? {
            Reply::Insert {
                first_row,
                appended,
                epoch,
                deduped,
            } => Ok(InsertReply {
                first_row,
                appended,
                epoch,
                deduped,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Mines every frequent pattern of the latest snapshot.
    pub fn mine(
        &mut self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: u16,
    ) -> ClientResult<MineReply> {
        let req = Request::Mine {
            scheme,
            threshold,
            threads,
        };
        match self.call(&req)? {
            Reply::Mine {
                epoch,
                rows,
                patterns,
            } => Ok(MineReply {
                epoch,
                rows,
                patterns,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Fetches the transaction at `row` (`None` past the snapshot's end).
    pub fn probe(&mut self, row: u64) -> ClientResult<Option<(u64, Vec<u32>)>> {
        match self.call(&Request::Probe { row })? {
            Reply::Probe { txn } => Ok(txn),
            other => Self::mismatch(other),
        }
    }

    /// Fetches the server's metrics document (JSON).
    pub fn stats(&mut self) -> ClientResult<String> {
        match self.call(&Request::Stats)? {
            Reply::Stats { json } => Ok(json),
            other => Self::mismatch(other),
        }
    }

    /// Pulls replication-log entries past either cursor: `from_row` is
    /// the puller's applied row count, `from_dseq` the count of
    /// delete-carrying entries it has applied (deletes occupy no rows,
    /// so a row cursor alone would skip them forever).  An empty reply
    /// means caught up on both.
    pub fn replicate(
        &mut self,
        from_row: u64,
        from_dseq: u64,
        max_entries: u32,
    ) -> ClientResult<ReplicateReply> {
        let req = Request::Replicate {
            from_row,
            from_dseq,
            max_entries,
        };
        match self.call(&req)? {
            Reply::LogEntries { rows, entries } => Ok(ReplicateReply { rows, entries }),
            other => Self::mismatch(other),
        }
    }

    /// Tombstone-deletes every live transaction holding one of `tids`.
    /// `req_id` works exactly as in [`Client::insert_with_id`]: reusing a
    /// nonzero ID on a retry turns an already-committed delete into a
    /// dedup hit instead of a second resolve.
    pub fn delete_with_id(&mut self, req_id: u64, tids: &[u64]) -> ClientResult<DeleteReply> {
        let req = Request::Delete {
            req_id,
            tids: tids.to_vec(),
        };
        match self.call(&req)? {
            Reply::Delete {
                deleted,
                epoch,
                deduped,
            } => Ok(DeleteReply {
                deleted,
                epoch,
                deduped,
            }),
            other => Self::mismatch(other),
        }
    }

    /// [`Client::delete_with_id`] without dedup enrollment.
    pub fn delete(&mut self, tids: &[u64]) -> ClientResult<DeleteReply> {
        self.delete_with_id(0, tids)
    }

    /// Runs one maintenance action (see [`proto::maintain_action`]):
    /// probe the measured FPR, compact tombstones away (optionally
    /// re-hashing at `arg` bits), fold the width in half, or let the
    /// server's policy decide.
    pub fn maintain(&mut self, action: u8, arg: u64) -> ClientResult<MaintainReply> {
        match self.call(&Request::Maintain { action, arg })? {
            Reply::Maintain {
                action_taken,
                width,
                live_rows,
                deleted_rows,
                fpr_bits,
            } => Ok(MaintainReply {
                action_taken,
                width,
                live_rows,
                deleted_rows,
                fpr: f64::from_bits(fpr_bits),
            }),
            other => Self::mismatch(other),
        }
    }

    /// Promotes the server to primary (idempotent on a primary).
    pub fn promote(&mut self) -> ClientResult<PromoteReply> {
        match self.call(&Request::Promote)? {
            Reply::Promoted { epoch, rows } => Ok(PromoteReply { epoch, rows }),
            other => Self::mismatch(other),
        }
    }

    /// Pins the server's latest snapshot and returns its epoch plus the
    /// width/hasher identity a coordinator validates at connect time.
    /// The pin keeps that snapshot answerable by `count_many_at` and
    /// `rows` until it is evicted by newer pins.
    pub fn snapshot_pin(&mut self) -> ClientResult<PinReply> {
        match self.call(&Request::SnapshotPin)? {
            Reply::SnapshotPinned {
                epoch,
                rows,
                width,
                hasher,
            } => Ok(PinReply {
                epoch,
                rows,
                width,
                hasher,
            }),
            other => Self::mismatch(other),
        }
    }

    /// Batched counting against a pinned epoch — the [`ShardHandle`]
    /// contract over the wire.  `tau` bounds per-query work exactly as in
    /// the local sharded counter: `Some(t)` answers exactly at or above
    /// `t` and with an upper bound below it; `None` answers exactly.
    ///
    /// A pin that was evicted answers with a typed `Server` error whose
    /// message starts with `stale pin:` — re-pin and retry.
    ///
    /// [`ShardHandle`]: https://docs.rs/bbs-shard
    pub fn count_many_at(
        &mut self,
        epoch: u64,
        itemsets: &[Vec<u32>],
        tau: Option<u64>,
    ) -> ClientResult<CountsAtReply> {
        let req = Request::CountManyAt {
            epoch,
            itemsets: itemsets.to_vec(),
            tau,
        };
        match self.call(&req)? {
            Reply::CountsAt { epoch, supports } => Ok(CountsAtReply { epoch, supports }),
            other => Self::mismatch(other),
        }
    }

    /// Pulls up to `limit` transactions of the pinned epoch starting at
    /// row `from`.  The server may return fewer than `limit` (byte
    /// budget); keep pulling until `from + txns.len() == total`.
    pub fn rows(&mut self, epoch: u64, from: u64, limit: u32) -> ClientResult<RowsReply> {
        match self.call(&Request::Rows { epoch, from, limit })? {
            Reply::Rows { total, txns } => Ok(RowsReply { total, txns }),
            other => Self::mismatch(other),
        }
    }

    /// Asks the server to drain and exit.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        match self.call(&Request::Shutdown)? {
            Reply::ShuttingDown => Ok(()),
            other => Self::mismatch(other),
        }
    }
}

/// Where a [`RetryClient`] dials.
#[derive(Debug, Clone)]
pub enum ServerAddr {
    /// A TCP `host:port` address.
    Tcp(String),
    /// A Unix socket path.
    Unix(PathBuf),
}

impl ServerAddr {
    fn connect(&self) -> ClientResult<Client> {
        match self {
            ServerAddr::Tcp(addr) => Client::connect_tcp(addr.as_str()),
            ServerAddr::Unix(path) => Client::connect_unix(path),
        }
    }
}

/// Backoff schedule for [`RetryClient`]: exponential with jitter.
///
/// Attempt `n` (1-based retry count) sleeps
/// `min(cap, base · 2^(n-1))` scaled by a jitter factor in `[0.5, 1.5)`,
/// so a thundering herd of clients spreads out instead of re-arriving in
/// lockstep.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries).  At least 1.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `retry` (1-based).
    fn backoff(&self, retry: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.cap);
        // Jitter in [0.5, 1.5): xorshift64* is plenty for spreading
        // wake-ups, and keeps this crate dependency-free.
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let jitter = 0.5 + (*rng >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(jitter)
    }
}

/// Counters a [`RetryClient`] keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wire attempts made (first tries + retries).
    pub attempts: u64,
    /// Attempts that were retries of a failed call.
    pub retries: u64,
    /// Times the connection was dropped and re-dialed.
    pub reconnects: u64,
    /// Insert replies answered from the server's exactly-once window.
    pub deduped: u64,
    /// Calls that exhausted the retry budget.
    pub gave_up: u64,
}

/// A reconnecting client with retry/backoff and exactly-once inserts.
///
/// Connections are (re-)established lazily, so constructing one is
/// infallible even while the server is down — the first call simply
/// retries the dial under the policy.
pub struct RetryClient {
    addr: ServerAddr,
    timeout: Option<Duration>,
    policy: RetryPolicy,
    conn: Option<Client>,
    stats: RetryStats,
    rng: u64,
    next_req_id: u64,
}

/// SplitMix64: mixes a seed into a well-distributed nonzero stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryClient {
    /// Builds a retrying client for `addr` with the default policy.
    pub fn new(addr: ServerAddr) -> RetryClient {
        RetryClient::with_policy(addr, RetryPolicy::default())
    }

    /// Builds a retrying client with an explicit policy.
    pub fn with_policy(addr: ServerAddr, policy: RetryPolicy) -> RetryClient {
        // Seed request IDs from wall clock + pid so concurrent processes
        // (and successive runs) never collide in the server's window.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        let mut seed = nanos ^ (u64::from(std::process::id()) << 32);
        let rng = splitmix64(&mut seed).max(1);
        let next_req_id = splitmix64(&mut seed);
        RetryClient {
            addr,
            timeout: None,
            policy,
            conn: None,
            stats: RetryStats::default(),
            rng,
            next_req_id,
        }
    }

    /// Bounds how long any single attempt waits for its response frame.
    pub fn set_timeout(&mut self, t: Option<Duration>) {
        self.timeout = t;
        self.conn = None;
    }

    /// The retry counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// The next request ID this client would stamp (nonzero, unique to
    /// this client instance).
    fn fresh_req_id(&mut self) -> u64 {
        let id = splitmix64(&mut self.next_req_id);
        id.max(1)
    }

    fn conn_or_dial(&mut self) -> ClientResult<&mut Client> {
        if self.conn.is_none() {
            let mut c = self.addr.connect()?;
            c.set_timeout(self.timeout)?;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("connection established"))
    }

    fn retry<T>(&mut self, mut f: impl FnMut(&mut Client) -> ClientResult<T>) -> ClientResult<T> {
        let attempts = self.policy.attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                let backoff = self.policy.backoff(attempt, &mut self.rng);
                std::thread::sleep(backoff);
                self.stats.retries += 1;
            }
            self.stats.attempts += 1;
            let outcome = match self.conn_or_dial() {
                Ok(conn) => f(conn),
                Err(e) => Err(e),
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if e.poisons_connection() && self.conn.take().is_some() {
                        self.stats.reconnects += 1;
                    }
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last = Some(e);
                }
            }
        }
        self.stats.gave_up += 1;
        Err(last.unwrap_or_else(|| {
            ClientError::Protocol("retry budget exhausted before any attempt".into())
        }))
    }

    /// Inserts with retries: one request ID is minted up front and
    /// reused across every attempt, so an attempt whose commit landed
    /// but whose reply was lost is answered from the exactly-once
    /// window on the next try.
    pub fn insert(&mut self, txns: &[(u64, Vec<u32>)]) -> ClientResult<InsertReply> {
        let req_id = self.fresh_req_id();
        self.insert_with_id(req_id, txns)
    }

    /// [`RetryClient::insert`] with a caller-chosen request ID.
    pub fn insert_with_id(
        &mut self,
        req_id: u64,
        txns: &[(u64, Vec<u32>)],
    ) -> ClientResult<InsertReply> {
        let reply = self.retry(|c| c.insert_with_id(req_id, txns))?;
        if reply.deduped {
            self.stats.deduped += 1;
        }
        Ok(reply)
    }

    /// Deletes with retries: like [`RetryClient::insert`], one request
    /// ID is minted up front and reused across attempts, so a delete
    /// whose commit landed but whose reply was lost is answered from the
    /// exactly-once window on the next try.
    pub fn delete(&mut self, tids: &[u64]) -> ClientResult<DeleteReply> {
        let req_id = self.fresh_req_id();
        self.delete_with_id(req_id, tids)
    }

    /// [`RetryClient::delete`] with a caller-chosen request ID.
    pub fn delete_with_id(&mut self, req_id: u64, tids: &[u64]) -> ClientResult<DeleteReply> {
        let reply = self.retry(|c| c.delete_with_id(req_id, tids))?;
        if reply.deduped {
            self.stats.deduped += 1;
        }
        Ok(reply)
    }

    /// `maintain` with retries (probing is a read; compaction and folds
    /// are idempotent at the "already done" fixpoint, so re-running one
    /// after a lost reply is safe).
    pub fn maintain(&mut self, action: u8, arg: u64) -> ClientResult<MaintainReply> {
        self.retry(|c| c.maintain(action, arg))
    }

    /// `count` with retries.
    pub fn count(&mut self, items: &[u32]) -> ClientResult<CountReply> {
        self.retry(|c| c.count(items))
    }

    /// `count_many` with retries (reads are idempotent, so retrying a
    /// whole batch is always safe).
    pub fn count_many(&mut self, itemsets: &[&[u32]]) -> ClientResult<CountManyReply> {
        self.retry(|c| c.count_many(itemsets))
    }

    /// `probe` with retries.
    pub fn probe(&mut self, row: u64) -> ClientResult<Option<(u64, Vec<u32>)>> {
        self.retry(|c| c.probe(row))
    }

    /// `mine` with retries.
    pub fn mine(
        &mut self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: u16,
    ) -> ClientResult<MineReply> {
        self.retry(|c| c.mine(scheme, threshold, threads))
    }

    /// `stats` with retries.
    pub fn server_stats(&mut self) -> ClientResult<String> {
        self.retry(|c| c.stats())
    }

    /// `ping` with retries.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.retry(|c| c.ping())
    }

    /// `promote` with retries (idempotent, so retrying is safe).
    pub fn promote(&mut self) -> ClientResult<PromoteReply> {
        self.retry(|c| c.promote())
    }

    /// `snapshot_pin` with retries (pinning is a read plus a bounded
    /// server-side retain; re-pinning is harmless).
    pub fn snapshot_pin(&mut self) -> ClientResult<PinReply> {
        self.retry(|c| c.snapshot_pin())
    }

    /// `count_many_at` with retries (idempotent read of a pinned epoch).
    pub fn count_many_at(
        &mut self,
        epoch: u64,
        itemsets: &[Vec<u32>],
        tau: Option<u64>,
    ) -> ClientResult<CountsAtReply> {
        self.retry(|c| c.count_many_at(epoch, itemsets, tau))
    }

    /// `rows` with retries (idempotent read of a pinned epoch).
    pub fn rows(&mut self, epoch: u64, from: u64, limit: u32) -> ClientResult<RowsReply> {
        self.retry(|c| c.rows(epoch, from, limit))
    }

    /// Asks the server to drain and exit (no retries: a shutdown that
    /// raced the socket closing already did its job).
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.conn_or_dial()?.shutdown_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_classification_is_exact() {
        // Table-driven: every variant, its retryability, and whether it
        // poisons the connection.
        let cases: Vec<(ClientError, bool, bool)> = vec![
            (
                ClientError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "reset")),
                true,
                true,
            ),
            (
                ClientError::Io(io::Error::new(io::ErrorKind::TimedOut, "timeout")),
                true,
                true,
            ),
            (
                ClientError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")),
                true,
                true,
            ),
            (ClientError::Overloaded, true, false),
            (ClientError::DiskFull, true, false),
            (ClientError::BadFrame("torn".into()), true, true),
            (
                ClientError::NotPrimary("127.0.0.1:7777".into()),
                true,
                false,
            ),
            (
                ClientError::ShardUnavailable(3, "connect timed out".into()),
                true,
                false,
            ),
            (ClientError::Server("mine failed".into()), false, false),
            (ClientError::Protocol("mismatched reply".into()), false, false),
        ];
        for (err, retryable, poisons) in cases {
            assert_eq!(err.is_retryable(), retryable, "{err}");
            assert_eq!(err.poisons_connection(), poisons, "{err}");
        }
    }

    #[test]
    fn backoff_grows_and_respects_the_cap() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        };
        let mut rng = 0xDEAD_BEEFu64;
        let mut prev_nominal = Duration::ZERO;
        for retry in 1..=8 {
            let d = policy.backoff(retry, &mut rng);
            let nominal = policy
                .base
                .saturating_mul(1u32 << (retry - 1).min(20))
                .min(policy.cap);
            // Jitter stays within [0.5, 1.5) of the nominal value.
            assert!(d >= nominal.mul_f64(0.5), "retry {retry}: {d:?}");
            assert!(d < nominal.mul_f64(1.5), "retry {retry}: {d:?}");
            assert!(d < policy.cap.mul_f64(1.5));
            assert!(nominal >= prev_nominal, "nominal schedule is monotone");
            prev_nominal = nominal;
        }
    }

    /// The backoff schedule is a pure function of (policy, retry, rng
    /// state): the same seed replays the same delays, every delay sits in
    /// the jitter envelope `[0.5, 1.5) ×` the capped-exponential nominal,
    /// and deep retry counts saturate at the cap instead of overflowing.
    #[test]
    fn backoff_is_deterministic_and_stays_in_the_jitter_envelope() {
        let policy = RetryPolicy {
            attempts: 64,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        };
        let seed = 0x5EED_CAFE_F00D_u64;
        let (mut a, mut b) = (seed, seed);
        for retry in 1..=40 {
            let da = policy.backoff(retry, &mut a);
            let db = policy.backoff(retry, &mut b);
            assert_eq!(da, db, "same seed must replay the same schedule");
            let nominal = policy
                .base
                .saturating_mul(1u32 << (retry - 1).min(20))
                .min(policy.cap);
            assert!(da >= nominal.mul_f64(0.5), "retry {retry}: {da:?} too small");
            assert!(da < nominal.mul_f64(1.5), "retry {retry}: {da:?} too large");
            if retry >= 7 {
                // 10ms · 2^6 = 640ms > cap: from here the nominal is the
                // cap itself, jitter included.
                assert!(da < policy.cap.mul_f64(1.5), "cap must bound deep retries");
                assert!(da >= policy.cap.mul_f64(0.5));
            }
        }
        // A different seed diverges (the jitter is doing something).
        let (mut c, mut d) = (seed, seed ^ 1);
        let diverged = (1..=10).any(|r| policy.backoff(r, &mut c) != policy.backoff(r, &mut d));
        assert!(diverged, "distinct seeds must produce distinct schedules");
    }

    /// A poisoned connection (transport error) forces a reconnect, and
    /// the attempt budget is **per call**: a call that burned retries on
    /// the poisoned stream does not eat into the next call's budget.
    #[test]
    fn reconnect_on_poison_resets_the_attempt_counter() {
        use std::io::Read as _;
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            // Connection 1: read the request, then hang up without
            // replying — the client sees an EOF, a poisoning error.
            {
                let (mut s, _) = listener.accept().expect("accept 1");
                let mut hdr = [0u8; 4];
                s.read_exact(&mut hdr).expect("read len");
                let mut body = vec![0u8; u32::from_le_bytes(hdr) as usize];
                s.read_exact(&mut body).expect("read body");
                // Drop: connection reset before any response.
            }
            // Connections 2 and 3: answer pings properly.
            for _ in 0..2 {
                let (mut s, _) = listener.accept().expect("accept");
                while let Ok(Some(payload)) = crate::proto::read_frame(&mut s) {
                    let req = Request::decode(&payload).expect("decode");
                    assert!(matches!(req, Request::Ping));
                    let resp = Response::Ok(Reply::Pong);
                    crate::proto::write_frame(&mut s, &resp.encode()).expect("write");
                }
            }
        });

        let mut client = RetryClient::with_policy(
            ServerAddr::Tcp(addr),
            RetryPolicy {
                attempts: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
        );

        // Call 1: attempt 1 poisons, attempt 2 reconnects and succeeds —
        // within one call's budget.
        client.ping().expect("ping after reconnect");
        let s1 = client.stats();
        assert_eq!(
            (s1.attempts, s1.retries, s1.reconnects, s1.gave_up),
            (2, 1, 1, 0),
            "poison consumed one retry and one reconnect"
        );

        // Call 2: the attempt counter restarted — a fresh call on the
        // healthy connection needs exactly one attempt, proving the
        // previous call's retries did not carry over.
        client.ping().expect("second ping");
        let s2 = client.stats();
        assert_eq!(
            (s2.attempts, s2.retries, s2.reconnects, s2.gave_up),
            (3, 1, 1, 0),
            "one fresh attempt, no inherited retries"
        );

        // Call 3: drop the connection client-side; the next call simply
        // re-dials and still needs only one attempt of its fresh budget.
        drop(client.conn.take());
        client.ping().expect("third ping");
        let s3 = client.stats();
        assert_eq!(s3.gave_up, 0, "no call ever exhausted its budget");
        assert_eq!(s3.attempts, 4, "third call also took a single attempt");

        // Hang up so the server thread sees EOF and exits.
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn request_ids_are_nonzero_and_distinct() {
        let mut c = RetryClient::new(ServerAddr::Tcp("127.0.0.1:1".into()));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = c.fresh_req_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate request id {id}");
        }
    }

    #[test]
    fn exhausted_budget_reports_the_last_error() {
        // Nothing listens on this address: every dial fails fast.
        let mut c = RetryClient::with_policy(
            ServerAddr::Tcp("127.0.0.1:1".into()),
            RetryPolicy {
                attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
        );
        let err = c.ping().expect_err("no server");
        assert!(matches!(err, ClientError::Io(_)));
        let stats = c.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.gave_up, 1);
    }
}
