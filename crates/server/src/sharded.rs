//! The shard router: one [`ShardedEngine`] fronting N per-shard
//! [`Engine`]s over a `bbs_shard` directory.
//!
//! Every shard owns its full stack — pager, commit record, dedup window,
//! replication log, **and its own committer thread** — so the router's
//! write path is N independent group-commit pipelines: an insert batch is
//! partitioned by TID residue ([`bbs_shard::route`]) and the per-shard
//! sub-batches commit concurrently.  That concurrency is the ingest win;
//! correctness is unchanged because a request ID deduplicates *per
//! shard*: a retry after a partial failure (some shards committed, some
//! overloaded) re-sends the same partition, the committed shards answer
//! from their exactly-once windows, and the remainder appends — the
//! deployment converges to exactly-once without any cross-shard
//! coordination.
//!
//! Reads scatter-gather.  `count`/`count_many` dispatch the whole batch
//! to every shard's shared-scan executor in parallel and sum the
//! per-shard supports — exact, because a BBS count is a sum over rows
//! and the shards partition the rows.  `mine` loads every shard's
//! snapshot, deals candidate subtrees across workers, and merges
//! supports across shards inside every `CountItemSet` (via
//! [`bbs_shard::ShardedCounter`], with its scaled-τ budgets and
//! cross-shard running-total exit), then refines uncertain candidates
//! with one scan per shard — the result is bit-for-bit what the
//! unsharded engine would return.  `probe` addresses the concatenated
//! row space (shard 0's rows first, then shard 1's, …).
//!
//! The router implements [`crate::net::RequestHandler`], so the same
//! listeners, framing and drain logic serve it; replication endpoints
//! are rejected with a typed error (shards replicate individually, not
//! through the router).

use crate::engine::{resolve_threads, Engine, InsertOutcome, ServerConfig, COUNT_MANY_MAX_WORK};
use crate::metrics::{Histogram, ServerMetrics};
use crate::net::RequestHandler;
use crate::proto::{Reply, Request, Response};
use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_shard::{count_many_sharded, route, scatter, shard_base, Manifest, ShardHandle};
use bbs_storage::snapshot::Snapshot;
use bbs_tdb::{IoStats, ItemId, Itemset, MineResult, SupportThreshold, Transaction};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scatter-gather latency (µs) per fan-out endpoint: the time from
/// dispatching a request to every shard until the gathered answer is
/// assembled.  Rendered in the stats document as `"scatter_us"`.
#[derive(Default)]
pub struct ScatterMetrics {
    /// Insert fan-out: partition + N parallel group commits + merge.
    pub insert: Histogram,
    /// Single-count fan-out.
    pub count: Histogram,
    /// Batched-count fan-out (whole batch to every shard).
    pub count_many: Histogram,
    /// Mine fan-out: snapshot loads + filter + cross-shard refinement.
    pub mine: Histogram,
    /// Probe routing (single-shard, but addressed globally).
    pub probe: Histogram,
}

impl ScatterMetrics {
    /// Renders the histograms as the stats document's `scatter_us` value.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"insert\":{},\"count\":{},\"count_many\":{},\"mine\":{},\"probe\":{}}}",
            self.insert.to_json(),
            self.count.to_json(),
            self.count_many.to_json(),
            self.mine.to_json(),
            self.probe.to_json()
        )
    }
}

/// Per-shard fault counters, rendered next to the `scatter_us`
/// histograms in the stats document.  A local router only ever bumps
/// `scatter_errors` (there is no wire to time out on and no follower to
/// fail over to); a distributed coordinator bumps all three.
#[derive(Default)]
pub struct ShardFaults {
    /// Scatter legs that returned an error for this shard.
    pub scatter_errors: AtomicU64,
    /// Scatter legs that exhausted their per-request timeout waiting on
    /// this shard.
    pub timeouts: AtomicU64,
    /// Times this shard's handle was re-pointed at its replication
    /// follower after the primary went silent.
    pub failovers: AtomicU64,
}

impl ShardFaults {
    /// Renders the three per-shard arrays as stats-document fragments:
    /// `"scatter_errors":[..]`, `"timeouts":[..]`, `"failovers":[..]`.
    pub fn to_json_arrays(faults: &[Arc<ShardFaults>]) -> Vec<String> {
        let render = |pick: fn(&ShardFaults) -> &AtomicU64| -> String {
            faults
                .iter()
                .map(|f| pick(f).load(Ordering::Relaxed).to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        vec![
            format!("\"scatter_errors\":[{}]", render(|f| &f.scatter_errors)),
            format!("\"timeouts\":[{}]", render(|f| &f.timeouts)),
            format!("\"failovers\":[{}]", render(|f| &f.failovers)),
        ]
    }
}

/// A shard handle over one shard's published snapshot: the gather layer
/// counts through the shard's shared-scan executor.
struct SnapshotShard {
    snap: Arc<Snapshot>,
    faults: Arc<ShardFaults>,
}

impl ShardHandle for SnapshotShard {
    fn rows(&self) -> u64 {
        self.snap.rows()
    }

    fn count_many(&self, itemsets: &[Itemset], tau: Option<u64>) -> io::Result<Vec<u64>> {
        self.snap.count_many_bounded(itemsets, tau).inspect_err(|_| {
            self.faults.scatter_errors.fetch_add(1, Ordering::Relaxed);
        })
    }
}

/// An in-memory per-shard counter for the mine path: answers are the
/// shard's exact BBS estimates (an exact answer satisfies every τ
/// budget), so the cross-shard sums are exactly the global estimates.
struct MemShard<'a> {
    bbs: &'a bbs_core::Bbs,
}

impl bbs_shard::ShardCounter for MemShard<'_> {
    fn count(&mut self, itemset: &Itemset, _tau: Option<u64>) -> io::Result<u64> {
        let mut io = IoStats::new();
        Ok(self.bbs.est_count(itemset, &mut io))
    }

    fn count_extensions(
        &mut self,
        prefix: &Itemset,
        extensions: &[ItemId],
        _tau: Option<u64>,
    ) -> io::Result<Vec<u64>> {
        let mut io = IoStats::new();
        Ok(extensions
            .iter()
            .map(|&e| self.bbs.est_count(&prefix.with_item(e), &mut io))
            .collect())
    }
}

/// One logical server over N TID-range shards: a router in front of N
/// complete [`Engine`]s, each with its own committer pipeline.
pub struct ShardedEngine {
    engines: Vec<Arc<Engine>>,
    dir: PathBuf,
    manifest: Manifest,
    metrics: Arc<ServerMetrics>,
    scatter: ScatterMetrics,
    faults: Vec<Arc<ShardFaults>>,
    draining: AtomicBool,
    mine_threads: usize,
}

impl ShardedEngine {
    /// Opens (crash-recovering, in parallel) every shard of the sharded
    /// deployment at `dir` with the default MD5 Bloom hasher.
    pub fn open(dir: &Path, cfg: ServerConfig) -> io::Result<Arc<ShardedEngine>> {
        let hasher: Arc<dyn ItemHasher> = Arc::new(Md5BloomHasher::new(4));
        ShardedEngine::open_with(dir, cfg, hasher)
    }

    /// [`ShardedEngine::open`] with an explicit hash family.
    pub fn open_with(
        dir: &Path,
        cfg: ServerConfig,
        hasher: Arc<dyn ItemHasher>,
    ) -> io::Result<Arc<ShardedEngine>> {
        if cfg.follow.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sharded deployment cannot follow a primary; replicate shards individually",
            ));
        }
        let manifest = Manifest::read(dir)?;
        let cfg = ServerConfig {
            width: manifest.width,
            ..cfg
        };
        let indices: Vec<usize> = (0..manifest.shards).collect();
        let engines = scatter(&indices, |_, &i| {
            Engine::open_with(&shard_base(dir, i), cfg.clone(), Arc::clone(&hasher))
        })?;
        let faults = (0..manifest.shards)
            .map(|_| Arc::new(ShardFaults::default()))
            .collect();
        Ok(Arc::new(ShardedEngine {
            engines,
            dir: dir.to_path_buf(),
            manifest,
            metrics: Arc::new(ServerMetrics::new()),
            scatter: ScatterMetrics::default(),
            faults,
            draining: AtomicBool::new(false),
            mine_threads: cfg.mine_threads,
        }))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.manifest.shards
    }

    /// The per-shard engines, in shard order.
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.engines
    }

    /// The router's scatter-gather latency histograms.
    pub fn scatter_metrics(&self) -> &ScatterMetrics {
        &self.scatter
    }

    /// The per-shard fault counters, in shard order.
    pub fn shard_faults(&self) -> &[Arc<ShardFaults>] {
        &self.faults
    }

    fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        self.engines.iter().map(|e| e.snapshot()).collect()
    }

    /// Partitions a batch by TID residue and commits every sub-batch on
    /// its owning shard's pipeline, concurrently.  `req_id` enrolls each
    /// sub-batch in its shard's exactly-once window, so retrying after a
    /// partial failure converges instead of duplicating.
    pub fn insert_with_id(&self, req_id: u64, txns: Vec<Transaction>) -> InsertOutcome {
        let start = Instant::now();
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return InsertOutcome::Overloaded;
        }
        if txns.is_empty() {
            let snaps = self.snapshots();
            return InsertOutcome::Committed {
                first_row: snaps.iter().map(|s| s.rows()).sum(),
                appended: 0,
                epoch: snaps.iter().map(|s| s.epoch()).sum(),
                deduped: false,
            };
        }
        let mut parts: Vec<Vec<Transaction>> = vec![Vec::new(); self.manifest.shards];
        for txn in txns {
            let shard = route(txn.tid.0, self.manifest.shards);
            parts[shard].push(txn);
        }
        let jobs: Vec<(usize, Vec<Transaction>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        let outcomes = scatter(&jobs, |_, (shard, part)| {
            Ok((
                *shard,
                self.engines[*shard].insert_with_id(req_id, part.clone()),
            ))
        })
        .expect("shard insert scatter is infallible");
        let merged = merge_insert_outcomes(outcomes);
        self.scatter
            .insert
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        merged
    }

    /// Scatter-gather batched counting: the whole batch goes to every
    /// shard's shared-scan executor in parallel and per-shard supports
    /// are summed.  Returns `(supports, epoch, rows)` where `epoch` is
    /// the sum of per-shard epochs (monotonic: any shard commit bumps
    /// it) and `rows` the total row count, both from the same per-shard
    /// snapshots the counts ran against.
    pub fn count_many(&self, itemsets: &[Vec<u32>]) -> io::Result<(Vec<u64>, u64, u64)> {
        let start = Instant::now();
        let sets: Vec<Itemset> = itemsets
            .iter()
            .map(|items| Itemset::from_values(items))
            .collect();
        let snaps = self.snapshots();
        let epoch: u64 = snaps.iter().map(|s| s.epoch()).sum();
        let rows: u64 = snaps.iter().map(|s| s.rows()).sum();
        let handles: Vec<SnapshotShard> = snaps
            .into_iter()
            .zip(self.faults.iter())
            .map(|(snap, faults)| SnapshotShard {
                snap,
                faults: Arc::clone(faults),
            })
            .collect();
        let supports = count_many_sharded(&handles, &sets, None)?;
        let hist = if itemsets.len() == 1 {
            &self.scatter.count
        } else {
            &self.scatter.count_many
        };
        hist.record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        Ok((supports, epoch, rows))
    }

    /// Scatters a tombstone delete across the shards that own the named
    /// TIDs (same residue routing as inserts), reusing `req_id` on every
    /// shard: each shard deduplicates independently, so a retry after a
    /// partial failure re-sends the same partition and the shards that
    /// already committed answer from their exactly-once windows.
    pub fn delete_tids(&self, req_id: u64, tids: &[u64]) -> Response {
        if self.is_draining() {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded;
        }
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); self.manifest.shards];
        for &tid in tids {
            parts[route(tid, self.manifest.shards)].push(tid);
        }
        let jobs: Vec<(usize, Vec<u64>)> = parts
            .into_iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .collect();
        if jobs.is_empty() {
            return Response::Ok(Reply::Delete {
                deleted: 0,
                epoch: self.snapshots().iter().map(|s| s.epoch()).sum(),
                deduped: false,
            });
        }
        let responses = scatter(&jobs, |_, (shard, part)| {
            Ok((*shard, self.engines[*shard].delete_tids(req_id, part)))
        })
        .expect("shard delete scatter is infallible");
        merge_delete_responses(responses)
    }

    /// Fans one maintenance action out to every shard and merges the
    /// replies into one health report: row counts sum, the reported
    /// width and FPR are the **worst** shard's (maintenance health is
    /// gated by the weakest member), and the action reported is the most
    /// consequential any shard took.
    fn serve_maintain(&self, req: &Request) -> Response {
        let results = scatter(&self.engines, |i, engine| {
            match engine.handle(req) {
                Response::Ok(Reply::Maintain {
                    action_taken,
                    width,
                    live_rows,
                    deleted_rows,
                    fpr_bits,
                }) => Ok(Ok((action_taken, width, live_rows, deleted_rows, fpr_bits))),
                Response::Ok(other) => Ok(Err(Response::Err(format!(
                    "shard {i}: unexpected maintain reply {other:?}"
                )))),
                other => {
                    self.faults[i].scatter_errors.fetch_add(1, Ordering::Relaxed);
                    Ok(Err(other))
                }
            }
        })
        .expect("shard maintain scatter is infallible");
        let mut merged = (0u8, 0u32, 0u64, 0u64, 0f64);
        for result in results {
            match result {
                Ok((taken, width, live, dead, fpr_bits)) => {
                    merged.0 = merged.0.max(taken);
                    merged.1 = merged.1.max(width);
                    merged.2 += live;
                    merged.3 += dead;
                    merged.4 = merged.4.max(f64::from_bits(fpr_bits));
                }
                Err(resp) => return resp,
            }
        }
        if merged.0 != crate::proto::maintain_action::PROBE_FPR {
            if let Err(e) = self.sync_manifest_width() {
                return Response::Err(format!(
                    "maintenance applied but manifest update failed: {e}"
                ));
            }
        }
        Response::Ok(Reply::Maintain {
            action_taken: merged.0,
            width: merged.1,
            live_rows: merged.2,
            deleted_rows: merged.3,
            fpr_bits: merged.4.to_bits(),
        })
    }

    /// Re-pins the on-disk `MANIFEST` width to the shards' live slice
    /// width after a fan-out compaction or fold re-sized the files, so
    /// offline tools (`bbs ingest`/`mine-deployment`) and fresh opens
    /// agree with what is actually on disk.  A no-op while the shards
    /// disagree (a fan-out that failed partway leaves the old pin).
    fn sync_manifest_width(&self) -> io::Result<()> {
        let width = self.engines[0].width();
        if self.engines.iter().any(|e| e.width() != width) {
            return Ok(());
        }
        let mut manifest = Manifest::read(&self.dir)?;
        if manifest.width != width {
            manifest.width = width;
            manifest.write(&self.dir)?;
        }
        Ok(())
    }

    /// Probes one row of the concatenated row space: rows `0..r0` live on
    /// shard 0, `r0..r0+r1` on shard 1, and so on, against the same set
    /// of per-shard snapshots.
    pub fn probe(&self, row: u64) -> io::Result<Option<Transaction>> {
        let start = Instant::now();
        let mut local = row;
        let mut found = Ok(None);
        for snap in self.snapshots() {
            if local < snap.rows() {
                found = snap.probe(local);
                break;
            }
            local -= snap.rows();
        }
        self.scatter
            .probe
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        found
    }

    /// Mines the union of all shard snapshots offline.  Candidate
    /// subtrees are dealt across `threads` workers and each worker merges
    /// supports across every shard before any prune decision, so the
    /// patterns, supports and approx markers are bit-for-bit what the
    /// unsharded engine returns over the same transactions.
    pub fn mine(
        &self,
        scheme: Scheme,
        threshold: SupportThreshold,
        threads: usize,
    ) -> io::Result<(MineResult, u64, u64)> {
        let start = Instant::now();
        let threads = if threads == 0 {
            resolve_threads(self.mine_threads)
        } else {
            threads
        };
        let snaps = self.snapshots();
        let epoch: u64 = snaps.iter().map(|s| s.epoch()).sum();
        // Parallel per-shard snapshot loads: the only part that contends
        // with commits is each shard's own page reads.
        let loaded = scatter(&snaps, |i, snap| {
            snap.load().inspect_err(|_| {
                self.faults[i].scatter_errors.fetch_add(1, Ordering::Relaxed);
            })
        })?;
        let shard_rows: Vec<u64> = loaded.iter().map(|(db, _)| db.len() as u64).collect();
        let rows: u64 = shard_rows.iter().sum();
        let tau = threshold.resolve(rows as usize);

        // Global vocabulary and exact singleton supports: sums over the
        // disjoint TID partition equal the unsharded values exactly.
        let mut actuals: HashMap<ItemId, u64> = HashMap::new();
        for (_, bbs) in &loaded {
            for item in bbs.vocabulary() {
                *actuals.entry(item).or_insert(0) += bbs.actual_singleton_count(item);
            }
        }
        let mut vocab: Vec<ItemId> = actuals.keys().copied().collect();
        vocab.sort_unstable();

        let make_source = || {
            Ok(bbs_shard::ShardedCounter::new(
                loaded.iter().map(|(_, bbs)| MemShard { bbs }).collect(),
                shard_rows.clone(),
            ))
        };
        let filter_out = bbs_core::run_filter_source_threaded(
            make_source,
            &vocab,
            &actuals,
            rows,
            scheme.filter(),
            tau,
            threads,
        )?;

        let mut result = MineResult::default();
        result.stats.candidates = filter_out.stats.candidates;
        result.stats.false_drops = filter_out.stats.false_drops;
        result.stats.certified = filter_out.stats.certified;
        result.stats.bbs_counts = filter_out.stats.bbs_counts;
        result.stats.io.merge(&filter_out.stats.io);
        result.patterns.extend_from(&filter_out.frequent);
        for (items, count) in filter_out.approx.iter() {
            result.patterns.insert(items.clone(), count);
            result.approx_supports.insert(items.clone());
        }

        if !filter_out.uncertain.is_empty() {
            // Global support merge before refinement verdicts: one scan
            // per shard (in parallel), then column sums decide.
            let cands: Vec<Itemset> = filter_out
                .uncertain
                .iter()
                .map(|(items, _)| items.clone())
                .collect();
            let per_shard = scatter(&loaded, |_, (db, _)| {
                let mut counts = vec![0u64; cands.len()];
                for txn in db.transactions() {
                    for (items, count) in cands.iter().zip(counts.iter_mut()) {
                        if items.is_subset_of(&txn.items) {
                            *count += 1;
                        }
                    }
                }
                Ok(counts)
            })?;
            for (k, items) in cands.into_iter().enumerate() {
                let count: u64 = per_shard.iter().map(|c| c[k]).sum();
                if count >= tau {
                    result.patterns.insert(items, count);
                } else {
                    result.stats.false_drops += 1;
                }
            }
        }
        self.scatter
            .mine
            .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        Ok((result, epoch, rows))
    }

    /// Renders the stats document: router wire metrics plus shard
    /// topology — shard count, per-shard rows, per-shard replication lag
    /// — and the scatter-gather latency histograms.
    pub fn stats_json(&self) -> String {
        let snaps = self.snapshots();
        let shard_rows: Vec<String> = snaps.iter().map(|s| s.rows().to_string()).collect();
        let shard_lag: Vec<String> = self
            .engines
            .iter()
            .map(|e| {
                e.metrics()
                    .replication_lag_rows
                    .load(Ordering::Relaxed)
                    .to_string()
            })
            .collect();
        let shard_queue_depth: Vec<String> = self
            .engines
            .iter()
            .map(|e| e.metrics().queue_depth.load(Ordering::Relaxed).to_string())
            .collect();
        let shard_deleted_rows: Vec<String> = snaps
            .iter()
            .map(|s| s.deleted_rows().to_string())
            .collect();
        let shard_fpr: Vec<String> = self
            .engines
            .iter()
            .map(|e| {
                format!(
                    "{:.6}",
                    f64::from_bits(
                        e.metrics()
                            .last_measured_fpr_bits
                            .load(Ordering::Relaxed)
                    )
                )
            })
            .collect();
        let shard_width: Vec<String> = self
            .engines
            .iter()
            .map(|e| e.width().to_string())
            .collect();
        let mut extra = vec![
            format!("\"shards\":{}", self.manifest.shards),
            format!(
                "\"width\":{}",
                self.engines.iter().map(|e| e.width()).max().unwrap_or(0)
            ),
            format!("\"rows\":{}", snaps.iter().map(|s| s.rows()).sum::<u64>()),
            format!("\"epoch\":{}", snaps.iter().map(|s| s.epoch()).sum::<u64>()),
            format!("\"shard_rows\":[{}]", shard_rows.join(",")),
            format!("\"shard_lag\":[{}]", shard_lag.join(",")),
            format!("\"shard_queue_depth\":[{}]", shard_queue_depth.join(",")),
            format!("\"shard_deleted_rows\":[{}]", shard_deleted_rows.join(",")),
            format!("\"shard_fpr\":[{}]", shard_fpr.join(",")),
            format!("\"shard_width\":[{}]", shard_width.join(",")),
            format!(
                "\"deleted_rows\":{}",
                snaps.iter().map(|s| s.deleted_rows()).sum::<u64>()
            ),
            format!(
                "\"live_rows\":{}",
                snaps.iter().map(|s| s.live_rows()).sum::<u64>()
            ),
            format!("\"scatter_us\":{}", self.scatter.to_json()),
            format!("\"draining\":{}", self.is_draining()),
        ];
        extra.extend(ShardFaults::to_json_arrays(&self.faults));
        self.metrics.to_json(&extra)
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::Ping => Response::Ok(Reply::Pong),
            Request::Count { items } => {
                match self.count_many(std::slice::from_ref(items)) {
                    Ok((supports, epoch, rows)) => Response::Ok(Reply::Count {
                        support: supports[0],
                        epoch,
                        rows,
                    }),
                    Err(e) => Response::Err(format!("count failed: {e}")),
                }
            }
            Request::CountMany { itemsets } => {
                let work: usize = itemsets.iter().map(|s| s.len().max(1)).sum();
                if work > COUNT_MANY_MAX_WORK {
                    self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                    return Response::Overloaded;
                }
                self.metrics
                    .count_many_batch
                    .record(itemsets.len() as u64);
                match self.count_many(itemsets) {
                    Ok((supports, epoch, rows)) => Response::Ok(Reply::CountMany {
                        supports,
                        epoch,
                        rows,
                    }),
                    Err(e) => Response::Err(format!("count_many failed: {e}")),
                }
            }
            Request::Insert { req_id, txns } => {
                let txns: Vec<Transaction> = txns
                    .iter()
                    .map(|(tid, items)| Transaction::new(*tid, Itemset::from_values(items)))
                    .collect();
                match self.insert_with_id(*req_id, txns) {
                    InsertOutcome::Committed {
                        first_row,
                        appended,
                        epoch,
                        deduped,
                    } => Response::Ok(Reply::Insert {
                        first_row,
                        appended,
                        epoch,
                        deduped,
                    }),
                    InsertOutcome::Overloaded => Response::Overloaded,
                    InsertOutcome::DiskFull => Response::DiskFull,
                    InsertOutcome::NotPrimary(primary) => Response::NotPrimary(primary),
                    InsertOutcome::Failed(msg) => Response::Err(msg),
                }
            }
            Request::Mine {
                scheme,
                threshold,
                threads,
            } => match self.mine(*scheme, *threshold, usize::from(*threads)) {
                Ok((result, epoch, rows)) => {
                    let mut patterns: Vec<(Vec<u32>, u64, bool)> = result
                        .patterns
                        .sorted()
                        .into_iter()
                        .map(|p| {
                            let approx = result.approx_supports.contains(&p.items);
                            let items = p.items.items().iter().map(|i| i.0).collect();
                            (items, p.support, approx)
                        })
                        .collect();
                    patterns.sort();
                    Response::Ok(Reply::Mine {
                        epoch,
                        rows,
                        patterns,
                    })
                }
                Err(e) => Response::Err(format!("mine failed: {e}")),
            },
            Request::Probe { row } => match self.probe(*row) {
                Ok(txn) => Response::Ok(Reply::Probe {
                    txn: txn.map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect())),
                }),
                Err(e) => Response::Err(format!("probe failed: {e}")),
            },
            Request::Stats => Response::Ok(Reply::Stats {
                json: self.stats_json(),
            }),
            Request::Shutdown => {
                self.begin_drain();
                Response::Ok(Reply::ShuttingDown)
            }
            Request::Delete { req_id, tids } => self.delete_tids(*req_id, tids),
            Request::Maintain { .. } => self.serve_maintain(req),
            Request::Replicate { .. } => Response::Err(
                "replicate is not served by a shard router; replicate each shard individually"
                    .into(),
            ),
            Request::Promote => Response::Err(
                "promote is not served by a shard router; promote each shard individually".into(),
            ),
            Request::SnapshotPin | Request::CountManyAt { .. } | Request::Rows { .. } => {
                Response::Err(
                    "snapshot pins are not served by a shard router; pin each shard server \
                     individually"
                        .into(),
                )
            }
        }
    }
}

impl RequestHandler for ShardedEngine {
    fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let opcode = req.opcode();
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.requests.fetch_add(1, Ordering::Relaxed);
        }
        let resp = self.dispatch(req);
        if let Some(ep) = self.metrics.endpoint(opcode) {
            ep.latency_us
                .record(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            if matches!(resp, Response::Err(_)) {
                ep.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        resp
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
        for engine in &self.engines {
            engine.begin_drain();
        }
    }

    fn join(&self) {
        self.begin_drain();
        for engine in &self.engines {
            engine.join();
        }
    }

    fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }
}

/// Merges per-shard insert outcomes into the client's single receipt:
/// any failure wins by severity (`Failed` > `DiskFull` > `NotPrimary` >
/// `Overloaded`); an all-committed batch reports the summed row count,
/// the highest participating shard epoch, `deduped` only when
/// *every* sub-batch was answered from a window, and the lowest
/// participating shard's `first_row` (receipts are per-shard row
/// addresses).
fn merge_insert_outcomes(outcomes: Vec<(usize, InsertOutcome)>) -> InsertOutcome {
    let mut first_row = None;
    let mut appended = 0u64;
    let mut epoch = 0u64;
    let mut deduped = true;
    let mut worst: Option<(u8, InsertOutcome)> = None;
    for (shard, outcome) in outcomes {
        let rank = match &outcome {
            InsertOutcome::Committed { .. } => 0u8,
            InsertOutcome::Overloaded => 1,
            InsertOutcome::NotPrimary(_) => 2,
            InsertOutcome::DiskFull => 3,
            InsertOutcome::Failed(_) => 4,
        };
        match outcome {
            InsertOutcome::Committed {
                first_row: fr,
                appended: n,
                epoch: e,
                deduped: d,
            } => {
                if first_row.is_none() {
                    first_row = Some(fr);
                }
                appended += n;
                epoch = epoch.max(e);
                deduped &= d;
            }
            InsertOutcome::Failed(msg) => {
                let tagged = InsertOutcome::Failed(format!("shard {shard}: {msg}"));
                if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                    worst = Some((rank, tagged));
                }
            }
            other => {
                if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                    worst = Some((rank, other));
                }
            }
        }
    }
    if let Some((_, outcome)) = worst {
        return outcome;
    }
    InsertOutcome::Committed {
        first_row: first_row.unwrap_or(0),
        appended,
        epoch,
        deduped,
    }
}

/// Merges per-shard delete responses into the client's single receipt:
/// any failure wins by severity (`Err` > `DiskFull` > `NotPrimary` >
/// `Overloaded`); an all-committed delete reports the summed tombstone
/// count, the highest participating epoch, and `deduped` only when
/// *every* shard answered from its window.
fn merge_delete_responses(responses: Vec<(usize, Response)>) -> Response {
    let mut deleted = 0u64;
    let mut epoch = 0u64;
    let mut deduped = true;
    let mut worst: Option<(u8, Response)> = None;
    for (shard, resp) in responses {
        let rank = match &resp {
            Response::Ok(_) => 0u8,
            Response::Overloaded => 1,
            Response::NotPrimary(_) => 2,
            Response::DiskFull => 3,
            _ => 4,
        };
        match resp {
            Response::Ok(Reply::Delete {
                deleted: n,
                epoch: e,
                deduped: d,
            }) => {
                deleted += n;
                epoch = epoch.max(e);
                deduped &= d;
            }
            Response::Err(msg) => {
                let tagged = Response::Err(format!("shard {shard}: {msg}"));
                if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                    worst = Some((rank, tagged));
                }
            }
            other => {
                if worst.as_ref().is_none_or(|(r, _)| rank > *r) {
                    worst = Some((rank, other));
                }
            }
        }
    }
    if let Some((_, resp)) = worst {
        return resp;
    }
    Response::Ok(Reply::Delete {
        deleted,
        epoch,
        deduped,
    })
}
