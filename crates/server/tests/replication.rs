//! Replication end-to-end: a primary streaming its commit log to a live
//! follower over the wire protocol, follower reads, typed write
//! rejection, manual and automatic promotion, and the exactly-once
//! guarantee surviving failover (a request ID re-sent to the promoted
//! follower is answered with its original receipt).

use bbs_core::Scheme;
use bbs_server::{serve, Bind, Client, ClientError, Engine, Role, ServerConfig, ServerHandle};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_tdb::SupportThreshold;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_repl_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn cfg() -> ServerConfig {
    ServerConfig {
        cache_pages: 128,
        queue_capacity: 32,
        commit_window: Duration::ZERO,
        ..ServerConfig::default()
    }
}

fn start(base: &Path, cfg: ServerConfig) -> (ServerHandle, String) {
    let engine = Engine::open(base, cfg).expect("open engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr)
}

fn follower_cfg(primary: &str) -> ServerConfig {
    ServerConfig {
        follow: Some(primary.to_string()),
        poll_interval: Duration::from_millis(10),
        ..cfg()
    }
}

/// Waits until the deployment behind `client` serves `rows` rows.
fn wait_rows(client: &mut Client, rows: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let seen = client.count(&[1]).expect("count").rows;
        if seen >= rows {
            assert_eq!(seen, rows, "follower overshot the primary");
            return;
        }
        assert!(Instant::now() < deadline, "follower never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn batch(start: u64, n: u64) -> Vec<(u64, Vec<u32>)> {
    (start..start + n)
        .map(|i| (i, vec![1, 2 + (i % 3) as u32]))
        .collect()
}

#[test]
fn follower_bootstraps_streams_serves_reads_and_rejects_writes() {
    let pb = base("stream_p");
    let fb = base("stream_f");
    let (_gp, _gf) = (Cleanup(pb.clone()), Cleanup(fb.clone()));

    let (primary, paddr) = start(&pb, cfg());
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");

    // Rows committed *before* the follower exists: the log doubles as the
    // bootstrap stream.
    pc.insert_with_id(101, &batch(0, 8)).expect("insert");
    pc.insert_with_id(102, &batch(8, 8)).expect("insert");

    let (follower, faddr) = start(&fb, follower_cfg(&paddr));
    assert!(matches!(
        follower.engine().role(),
        Role::Follower { ref primary } if *primary == paddr
    ));
    let mut fc = Client::connect_tcp(&faddr).expect("connect follower");
    wait_rows(&mut fc, 16);

    // Live streaming: new commits appear on the follower.
    pc.insert_with_id(103, &batch(16, 8)).expect("insert");
    wait_rows(&mut fc, 24);

    // Follower reads match the primary: count, probe, and a full mine.
    assert_eq!(fc.count(&[1]).expect("count").support, 24);
    let probed = fc.probe(17).expect("probe").expect("present");
    assert_eq!(probed.0, 17);
    let pm = pc
        .mine(Scheme::Dfp, SupportThreshold::Count(4), 2)
        .expect("mine primary");
    let fm = fc
        .mine(Scheme::Dfp, SupportThreshold::Count(4), 2)
        .expect("mine follower");
    assert_eq!(pm.patterns, fm.patterns);
    assert_eq!(pm.rows, fm.rows);

    // Writes are rejected with the typed status naming the primary.
    match fc.insert_with_id(999, &batch(24, 1)) {
        Err(ClientError::NotPrimary(addr)) => assert_eq!(addr, paddr),
        other => panic!("expected NotPrimary, got {other:?}"),
    }

    // Role and lag are visible in both stats documents.
    let pstats = pc.stats().expect("stats");
    assert!(pstats.contains("\"role\":\"primary\""));
    let fstats = fc.stats().expect("stats");
    assert!(fstats.contains("\"role\":\"follower\""));
    assert!(fstats.contains(&format!("\"primary_addr\":\"{paddr}\"")));
    assert!(fstats.contains("\"replication_lag_rows\":0"));
    assert!(fstats.contains("\"not_primary\":1"));

    follower.join();
    primary.join();
}

#[test]
fn promotion_preserves_exactly_once_for_resent_request_ids() {
    let pb = base("promote_p");
    let fb = base("promote_f");
    let (_gp, _gf) = (Cleanup(pb.clone()), Cleanup(fb.clone()));

    let (primary, paddr) = start(&pb, cfg());
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");

    let txns = batch(0, 10);
    let original = pc.insert_with_id(4242, &txns).expect("insert");
    assert!(!original.deduped);

    let (follower, faddr) = start(&fb, follower_cfg(&paddr));
    let mut fc = Client::connect_tcp(&faddr).expect("connect follower");
    wait_rows(&mut fc, 10);

    // The old primary goes away (cleanly here; the chaos test SIGKILLs).
    primary.join();

    let promoted = fc.promote().expect("promote");
    assert_eq!(promoted.rows, 10);
    assert!(matches!(follower.engine().role(), Role::Primary));

    // The client's in-flight insert is re-sent to the promoted follower
    // with its original request ID: the receipts replicated with the
    // batch answer it from the exactly-once window — no duplicate rows.
    let replayed = fc.insert_with_id(4242, &txns).expect("replay");
    assert!(replayed.deduped, "replay must hit the replicated window");
    assert_eq!(replayed.first_row, original.first_row);
    assert_eq!(replayed.appended, original.appended);
    assert_eq!(fc.count(&[1]).expect("count").rows, 10);

    // Promotion is idempotent, and the new primary accepts fresh writes.
    fc.promote().expect("promote again");
    let fresh = fc.insert_with_id(4243, &batch(10, 5)).expect("insert");
    assert_eq!((fresh.first_row, fresh.appended), (10, 5));
    assert_eq!(fc.count(&[1]).expect("count").rows, 15);
    let stats = fc.stats().expect("stats");
    assert!(stats.contains("\"role\":\"primary\""));
    assert!(stats.contains("\"promotions\":1"));

    follower.join();
}

#[test]
fn follower_auto_promotes_after_primary_loss() {
    let pb = base("auto_p");
    let fb = base("auto_f");
    let (_gp, _gf) = (Cleanup(pb.clone()), Cleanup(fb.clone()));

    let (primary, paddr) = start(&pb, cfg());
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");
    pc.insert_with_id(7, &batch(0, 6)).expect("insert");

    let (follower, faddr) = start(
        &fb,
        ServerConfig {
            auto_promote: Some(Duration::from_millis(200)),
            ..follower_cfg(&paddr)
        },
    );
    let mut fc = Client::connect_tcp(&faddr).expect("connect follower");
    wait_rows(&mut fc, 6);

    primary.join();

    // With the primary gone, the follower promotes itself after the
    // configured loss window and starts accepting writes.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match fc.insert_with_id(8, &batch(6, 4)) {
            Ok(reply) => {
                assert_eq!((reply.first_row, reply.appended), (6, 4));
                break;
            }
            Err(ClientError::NotPrimary(_)) => {
                assert!(Instant::now() < deadline, "auto-promotion never happened");
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("insert failed: {e}"),
        }
    }
    assert!(matches!(follower.engine().role(), Role::Primary));
    assert_eq!(fc.count(&[1]).expect("count").rows, 10);
    let stats = fc.stats().expect("stats");
    assert!(stats.contains("\"promotions\":1"));

    follower.join();
}

#[test]
fn follower_chains_off_another_followers_log_with_second_hop_parity() {
    let pb = base("chain_p");
    let mb = base("chain_mid");
    let tb = base("chain_tail");
    let (_gp, _gm, _gt) = (Cleanup(pb.clone()), Cleanup(mb.clone()), Cleanup(tb.clone()));

    let (primary, paddr) = start(&pb, cfg());
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");
    pc.insert_with_id(201, &batch(0, 12)).expect("insert");

    // Hop 1: a follower of the primary.  Applying replicated entries
    // populates its own `<base>.log`, so it can serve `replicate` itself.
    let (mid, maddr) = start(&mb, follower_cfg(&paddr));
    let mut mc = Client::connect_tcp(&maddr).expect("connect mid");
    wait_rows(&mut mc, 12);

    // Hop 2: a follower whose upstream is the *mid* follower, including
    // rows that reached mid before the tail existed (log bootstrap).
    let (tail, taddr) = start(&tb, follower_cfg(&maddr));
    assert!(matches!(
        tail.engine().role(),
        Role::Follower { ref primary } if *primary == maddr
    ));
    let mut tc = Client::connect_tcp(&taddr).expect("connect tail");
    wait_rows(&mut tc, 12);

    // Live commits propagate across both hops.
    pc.insert_with_id(202, &batch(12, 8)).expect("insert");
    wait_rows(&mut mc, 20);
    wait_rows(&mut tc, 20);

    // Second-hop read parity: per-op counts, a batched count_many, probes
    // and a full mine all answer exactly as the primary does.
    let queries: Vec<&[u32]> = vec![&[1], &[2], &[1, 3], &[4], &[]];
    let batched = tc.count_many(&queries).expect("count_many tail");
    assert_eq!(batched.rows, 20);
    for (i, q) in queries.iter().enumerate() {
        if q.is_empty() {
            assert_eq!(batched.supports[i], 20, "empty itemset counts all rows");
        } else {
            assert_eq!(
                batched.supports[i],
                pc.count(q).expect("count primary").support,
                "second hop diverged on {q:?}"
            );
        }
    }
    let probed = tc.probe(13).expect("probe").expect("present");
    assert_eq!(probed.0, 13);
    let pm = pc
        .mine(Scheme::Dfp, SupportThreshold::Count(4), 2)
        .expect("mine primary");
    let tm = tc
        .mine(Scheme::Dfp, SupportThreshold::Count(4), 2)
        .expect("mine tail");
    assert_eq!(pm.patterns, tm.patterns);
    assert_eq!(pm.rows, tm.rows);

    // The tail redirects writers to *its* upstream (the mid follower).
    match tc.insert_with_id(999, &batch(20, 1)) {
        Err(ClientError::NotPrimary(addr)) => assert_eq!(addr, maddr),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    let tstats = tc.stats().expect("stats");
    assert!(tstats.contains("\"role\":\"follower\""));
    assert!(tstats.contains(&format!("\"primary_addr\":\"{maddr}\"")));

    tail.join();
    mid.join();
    primary.join();
}

#[test]
fn replicate_endpoint_reports_a_gap_as_a_typed_error() {
    let pb = base("gap_p");
    let _g = Cleanup(pb.clone());
    let (primary, paddr) = start(&pb, cfg());
    let mut pc = Client::connect_tcp(&paddr).expect("connect");
    pc.insert_with_id(1, &batch(0, 4)).expect("insert");

    // Asking for a row past the committed end is "caught up", not a gap.
    let caught_up = pc.replicate(4, 0, 64).expect("replicate");
    assert_eq!(caught_up.rows, 4);
    assert!(caught_up.entries.is_empty());

    // Asking mid-entry is unservable: entries are the replication unit.
    let err = pc.replicate(2, 0, 64).expect_err("mid-entry row");
    assert!(matches!(err, ClientError::Server(_)), "got {err:?}");

    // From the start, the entry comes back with its receipts intact.
    let all = pc.replicate(0, 0, 64).expect("replicate");
    assert_eq!(all.rows, 4);
    assert_eq!(all.entries.len(), 1);
    let (first_row, txns, receipts, _deletes) = &all.entries[0];
    assert_eq!(*first_row, 0);
    assert_eq!(txns.len(), 4);
    assert_eq!(receipts, &vec![(1u64, 0u64, 4u64)]);

    primary.join();
}
