//! End-to-end server test: a live server on a temp deployment, hammered
//! by concurrent insert / count / mine clients over TCP and a Unix
//! socket, then cross-validated against a serial offline re-mine of the
//! files it left behind.
//!
//! The consistency argument this test enforces:
//!
//! * every transaction carries item 1, and every insert batch has a fixed
//!   size — so any snapshot-consistent `count({1})` must equal that
//!   snapshot's row count, and every observed row count must be a whole
//!   number of batches (a torn batch would break one or the other);
//! * counts stamped with a later epoch can never shrink;
//! * after the drain, a fresh offline mine of the raw files must produce
//!   exactly the patterns the live server's last `mine` reported.

use bbs_core::Scheme;
use bbs_server::{serve, Bind, Client, ClientError, Engine, ServerConfig};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_storage::mine_in_place;
use bbs_tdb::{Itemset, SupportThreshold};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_e2e_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

/// Items of the `i`-th transaction: always item 1, plus a rotating tail
/// that gives the miner real 2- and 3-itemsets to find.
fn items_of(i: u64) -> Vec<u32> {
    let mut items = vec![1, 2 + (i % 5) as u32];
    if i.is_multiple_of(3) {
        items.push(20);
    }
    items
}

const BATCH: u64 = 16;
const BATCHES_PER_WRITER: u64 = 12;
const WRITERS: u64 = 4;
const TOTAL: u64 = BATCH * BATCHES_PER_WRITER * WRITERS;

#[test]
fn concurrent_clients_match_offline_remine() {
    let b = base("full");
    let _g = Cleanup(b.clone());
    let sock = {
        let mut p = std::env::temp_dir();
        p.push(format!("bbs_e2e_{}.sock", std::process::id()));
        p
    };

    let engine = Engine::open(
        &b,
        ServerConfig {
            cache_pages: 256,
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    )
    .expect("open engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: Some(sock.clone()),
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr().expect("tcp addr");

    let writers_done = Arc::new(AtomicBool::new(false));

    // Insert workers: each commits fixed-size batches over TCP, retrying
    // on the typed Overloaded response.
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        writer_handles.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(addr).expect("connect");
            for batch in 0..BATCHES_PER_WRITER {
                let start = w * BATCHES_PER_WRITER * BATCH + batch * BATCH;
                let txns: Vec<(u64, Vec<u32>)> = (start..start + BATCH)
                    .map(|i| (i, items_of(i)))
                    .collect();
                loop {
                    match client.insert(&txns) {
                        Ok(reply) => {
                            assert_eq!(reply.appended, BATCH);
                            assert_eq!(reply.first_row % BATCH, 0, "batches tile rows");
                            break;
                        }
                        Err(ClientError::Overloaded) => {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(e) => panic!("insert failed: {e}"),
                    }
                }
            }
        }));
    }

    // Count workers: one on TCP, one on the Unix socket.  Every reply
    // must be prefix-consistent and epochs must never run backwards.
    let mut reader_handles = Vec::new();
    for unix in [false, true] {
        let done = Arc::clone(&writers_done);
        let sock = sock.clone();
        reader_handles.push(std::thread::spawn(move || {
            let mut client = if unix {
                Client::connect_unix(&sock).expect("connect unix")
            } else {
                Client::connect_tcp(addr).expect("connect tcp")
            };
            let mut last_rows = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) || observations < 3 {
                let reply = client.count(&[1]).expect("count");
                // Item 1 is in every transaction: a snapshot-consistent
                // count equals the snapshot's rows, exactly.
                assert_eq!(
                    reply.support, reply.rows,
                    "count({{1}}) must equal visible rows"
                );
                assert_eq!(reply.rows % BATCH, 0, "no torn batch is ever visible");
                assert!(reply.rows >= last_rows, "snapshots never run backwards");
                last_rows = reply.rows;
                observations += 1;
            }
            observations
        }));
    }

    // A mine client that runs concurrently with ingest: its patterns must
    // be internally consistent with the snapshot it was stamped with.
    {
        let mut client = Client::connect_tcp(addr).expect("connect");
        let reply = client
            .mine(Scheme::Dfp, SupportThreshold::Count(1), 2)
            .expect("mid-ingest mine");
        assert_eq!(reply.rows % BATCH, 0, "mine sees whole batches only");
        for (items, support, _approx) in &reply.patterns {
            assert!(*support <= reply.rows, "support bounded by snapshot rows");
            if items == &[1] {
                assert_eq!(*support, reply.rows, "item 1 is in every row");
            }
        }
    }

    for h in writer_handles {
        h.join().expect("writer");
    }
    writers_done.store(true, Ordering::Release);
    for h in reader_handles {
        let observations = h.join().expect("reader");
        assert!(observations >= 3);
    }

    // Final state over the Unix socket: stats + a full mine.
    let threshold = SupportThreshold::Count(TOTAL / 5);
    let mut client = Client::connect_unix(&sock).expect("connect unix");
    let stats = client.stats().expect("stats");
    assert!(stats.contains(&format!("\"committed_rows\":{TOTAL}")));
    assert!(stats.contains("\"insert\":{\"requests\":"));
    let final_count = client.count(&[1]).expect("final count");
    assert_eq!(final_count.support, TOTAL);
    let mined = client
        .mine(Scheme::Dfp, threshold, 0)
        .expect("final mine");
    assert_eq!(mined.rows, TOTAL);
    assert!(
        mined.patterns.iter().any(|(items, _, _)| items == &[1]),
        "item 1 must be frequent"
    );

    // Graceful drain through the wire protocol.
    client.shutdown_server().expect("shutdown");
    handle.join();

    // Offline serial re-mine of the raw files the server left behind.
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let mut dep = DiskDeployment::open(&b, 64, hasher, 256).expect("reopen");
    assert_eq!(dep.db.len(), TOTAL);
    let (offline, _stats) = mine_in_place(&mut dep, Scheme::Dfp, threshold, 1).expect("re-mine");
    assert_eq!(
        offline.patterns.len(),
        mined.patterns.len(),
        "live mine and offline re-mine must agree on the pattern count"
    );
    for (items, support, _approx) in &mined.patterns {
        let set = Itemset::from_values(items);
        assert_eq!(
            offline.patterns.support(&set),
            Some(*support),
            "support mismatch for {items:?}"
        );
    }
}

#[test]
fn server_restart_resumes_from_committed_state() {
    let b = base("restart");
    let _g = Cleanup(b.clone());

    let total = {
        let engine = Engine::open(&b, ServerConfig::default()).expect("open");
        let handle = serve(
            engine,
            &Bind {
                tcp: Some("127.0.0.1:0".into()),
                unix: None,
            },
        )
        .expect("serve");
        let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).expect("connect");
        let txns: Vec<(u64, Vec<u32>)> = (0..50).map(|i| (i, items_of(i))).collect();
        let reply = client.insert(&txns).expect("insert");
        client.shutdown_server().expect("shutdown");
        handle.join();
        reply.first_row + reply.appended
    };

    // A second server over the same files serves the committed prefix.
    let engine = Engine::open(&b, ServerConfig::default()).expect("reopen");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve again");
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap()).expect("connect");
    let reply = client.count(&[1]).expect("count");
    assert_eq!(reply.support, total);
    let probe = client.probe(7).expect("probe").expect("present");
    assert_eq!(probe.0, 7);
    assert_eq!(probe.1, items_of(7));
    assert_eq!(client.probe(total).expect("past end"), None);
    handle.join();
}
