//! The dynamic workload end-to-end: tombstone deletes with exactly-once
//! retries, online maintenance (FPR probes, epoch-swapped compaction,
//! fold-based resizing), deletes replicating through a follower chain,
//! automatic follower resync after a primary compaction rewrites the
//! log, sharded delete routing, and — the acceptance run — a seeded
//! weblog-churn storm whose measured FPR returns below the health
//! threshold after automatic maintenance.
//!
//! The storm honours a `CHAOS_SEED` env override, like `chaos.rs`.

use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_server::{
    maintain_action, serve, Bind, Client, ClientError, Engine, RetryClient, RetryPolicy, Role,
    ServerAddr, ServerConfig, ServerHandle, ShardedEngine,
};
use bbs_shard::{route, ShardedDeployment};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_tdb::{IoStats, Itemset, SupportThreshold, Transaction};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEFAULT_SEED: u64 = 0xD15C_0DE5;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_dyn_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

struct CleanupDir(PathBuf);
impl Drop for CleanupDir {
    fn drop(&mut self) {
        ShardedDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(4))
}

fn cfg(width: usize) -> ServerConfig {
    ServerConfig {
        width,
        cache_pages: 128,
        queue_capacity: 32,
        commit_window: Duration::ZERO,
        ..ServerConfig::default()
    }
}

fn start(base: &Path, cfg: ServerConfig) -> (ServerHandle, String) {
    let engine = Engine::open(base, cfg).expect("open engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr)
}

fn follower_cfg(primary: &str, width: usize) -> ServerConfig {
    ServerConfig {
        follow: Some(primary.to_string()),
        poll_interval: Duration::from_millis(10),
        ..cfg(width)
    }
}

fn batch(start: u64, n: u64) -> Vec<(u64, Vec<u32>)> {
    (start..start + n)
        .map(|i| (i, vec![1, 2 + (i % 3) as u32]))
        .collect()
}

/// Exact support of `items` over the surviving transactions.
fn exact(survivors: &[(u64, Vec<u32>)], items: &[u32]) -> u64 {
    survivors
        .iter()
        .filter(|(_, t)| items.iter().all(|i| t.contains(i)))
        .count() as u64
}

/// BBS estimates from an offline index rebuilt over exactly the
/// survivors, in row order, at the given width — the equivalence oracle
/// a compacted server must match bit-for-bit.
fn offline_estimates(
    survivors: &[(u64, Vec<u32>)],
    width: usize,
    queries: &[Vec<u32>],
) -> Vec<u64> {
    let mut db = bbs_tdb::TransactionDb::new();
    for (tid, items) in survivors {
        db.push(Transaction::new(*tid, Itemset::from_values(items)));
    }
    let mut io = IoStats::new();
    let bbs = bbs_core::Bbs::build(width, hasher(), &db, &mut io);
    queries
        .iter()
        .map(|q| bbs.est_count(&Itemset::from_values(q), &mut io))
        .collect()
}

/// Polls `client` until its stats document reports `n` tombstoned rows.
fn wait_deleted(client: &mut Client, n: u64) {
    let needle = format!("\"deleted_rows\":{n}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if client.stats().expect("stats").contains(&needle) {
            return;
        }
        assert!(Instant::now() < deadline, "deletes never replicated");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn wait_rows(client: &mut Client, rows: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if client.count(&[1]).expect("count").rows >= rows {
            return;
        }
        assert!(Instant::now() < deadline, "rows never replicated");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn deletes_are_exactly_once_and_survive_restart() {
    let b = base("del_once");
    let _g = Cleanup(b.clone());
    let (handle, addr) = start(&b, cfg(64));
    let mut c = Client::connect_tcp(&addr).expect("connect");

    let txns = batch(0, 20);
    c.insert_with_id(1, &txns).expect("insert");
    assert_eq!(c.count(&[1]).expect("count").support, 20);

    // Delete every TID divisible by 4 (5 rows), with a request ID.
    let victims: Vec<u64> = (0..20).filter(|t| t % 4 == 0).collect();
    let first = c.delete_with_id(77, &victims).expect("delete");
    assert_eq!(first.deleted, 5);
    assert!(!first.deduped);

    // Counts exclude the tombstoned rows immediately; rows (total ever
    // committed) is unchanged.
    let reply = c.count(&[1]).expect("count");
    assert_eq!(reply.support, 15);
    assert_eq!(reply.rows, 20);

    // A retry with the same ID answers from the dedup window without
    // resolving again — same receipt, no double-count.
    let retry = c.delete_with_id(77, &victims).expect("retry");
    assert!(retry.deduped, "retry must hit the window");
    assert_eq!(retry.deleted, 5);
    assert_eq!(c.count(&[1]).expect("count").support, 15);

    // Deleting an already-dead or unknown TID resolves to zero rows.
    let nothing = c.delete(&[0, 4, 999]).expect("re-delete");
    assert_eq!(nothing.deleted, 0);

    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"deleted_rows\":5"), "{stats}");
    assert!(stats.contains("\"live_rows\":15"), "{stats}");
    handle.join();

    // The tombstones and the dedup receipt are durable: a fresh engine
    // over the same files serves the same counts and still dedups.
    let (handle, addr) = start(&b, cfg(64));
    let mut c = Client::connect_tcp(&addr).expect("reconnect");
    assert_eq!(c.count(&[1]).expect("count").support, 15);
    let replay = c.delete_with_id(77, &victims).expect("replay");
    assert!(replay.deduped, "receipt must survive restart");
    assert_eq!(replay.deleted, 5);
    handle.join();

    let report = DiskDeployment::verify(&b).expect("fsck");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.deleted_rows, 5);
}

#[test]
fn maintain_compacts_folds_and_reports_fpr() {
    let b = base("maintain");
    let _g = Cleanup(b.clone());
    let (handle, addr) = start(&b, cfg(64));
    let mut c = Client::connect_tcp(&addr).expect("connect");

    let txns = batch(0, 30);
    c.insert_with_id(1, &txns).expect("insert");
    let victims: Vec<u64> = (0..30).filter(|t| t % 3 == 0).collect();
    c.delete_with_id(2, &victims).expect("delete");
    let survivors: Vec<(u64, Vec<u32>)> = txns
        .iter()
        .filter(|(t, _)| t % 3 != 0)
        .cloned()
        .collect();

    // Probe is read-only: nothing changes but the gauge.
    let probe = c.maintain(maintain_action::PROBE_FPR, 16).expect("probe");
    assert_eq!(probe.action_taken, maintain_action::PROBE_FPR);
    assert_eq!(probe.width, 64);
    assert_eq!(probe.live_rows, 20);
    assert_eq!(probe.deleted_rows, 10);
    assert!((0.0..=1.0).contains(&probe.fpr), "fpr {}", probe.fpr);
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"last_measured_fpr\":"), "{stats}");

    // Compaction reclaims the tombstones and re-hashes at double width;
    // live counts must equal an offline rebuild of the survivors,
    // bit-for-bit (estimates included).
    let compacted = c
        .maintain(maintain_action::COMPACT, 128)
        .expect("compact");
    assert_eq!(compacted.action_taken, maintain_action::COMPACT);
    assert_eq!(compacted.width, 128);
    assert_eq!(compacted.live_rows, 20);
    assert_eq!(compacted.deleted_rows, 0);
    let queries: Vec<Vec<u32>> = vec![vec![1], vec![2], vec![3], vec![1, 4], vec![2, 3]];
    let oracle = offline_estimates(&survivors, 128, &queries);
    for (q, want) in queries.iter().zip(&oracle) {
        let got = c.count(q).expect("count").support;
        assert_eq!(got, *want, "post-compaction estimate diverged on {q:?}");
        assert!(got >= exact(&survivors, q), "estimate must upper-bound");
    }
    assert_eq!(c.count(&[1]).expect("count").rows, 20);

    // Fold halves the width in place; counts stay upper bounds and match
    // the offline fold (a 64-bit rebuild of the same rows).
    let folded = c.maintain(maintain_action::FOLD, 0).expect("fold");
    assert_eq!(folded.action_taken, maintain_action::FOLD);
    assert_eq!(folded.width, 64);
    let oracle = offline_estimates(&survivors, 64, &queries);
    for (q, want) in queries.iter().zip(&oracle) {
        assert_eq!(
            c.count(q).expect("count").support,
            *want,
            "post-fold estimate diverged on {q:?}"
        );
    }

    // Inserts and deletes keep working after both swaps.
    c.insert_with_id(3, &batch(30, 6)).expect("insert after");
    assert_eq!(c.count(&[1]).expect("count").rows, 26);
    c.delete_with_id(4, &[30]).expect("delete after");
    assert_eq!(c.count(&[1]).expect("count").support, 25);

    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"width\":64"), "{stats}");
    assert!(stats.contains("\"maintenance_compactions\":1"), "{stats}");
    assert!(stats.contains("\"maintenance_folds\":1"), "{stats}");
    handle.join();

    let report = DiskDeployment::verify(&b).expect("fsck");
    assert!(report.is_clean(), "{report}");
}

#[test]
fn deletes_replicate_through_a_follower_chain() {
    let pb = base("chain_p");
    let mb = base("chain_m");
    let tb = base("chain_t");
    let (_gp, _gm, _gt) = (Cleanup(pb.clone()), Cleanup(mb.clone()), Cleanup(tb.clone()));

    let (primary, paddr) = start(&pb, cfg(64));
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");
    pc.insert_with_id(1, &batch(0, 16)).expect("insert");
    // A delete committed *before* the chain exists rides the bootstrap.
    pc.delete_with_id(2, &[0, 5]).expect("early delete");

    // Hop 1 follows the primary; hop 2 follows hop 1, serving REPLICATE
    // off its own re-logged `<base>.log`.
    let (mid, maddr) = start(&mb, follower_cfg(&paddr, 64));
    let mut mc = Client::connect_tcp(&maddr).expect("connect mid");
    wait_rows(&mut mc, 16);
    wait_deleted(&mut mc, 2);

    let (tail, taddr) = start(&tb, follower_cfg(&maddr, 64));
    assert!(matches!(
        tail.engine().role(),
        Role::Follower { ref primary } if *primary == maddr
    ));
    let mut tc = Client::connect_tcp(&taddr).expect("connect tail");
    wait_rows(&mut tc, 16);
    wait_deleted(&mut tc, 2);

    // A live delete (and a live insert) propagate across both hops.
    pc.insert_with_id(3, &batch(16, 4)).expect("insert");
    pc.delete_with_id(4, &[7, 8, 16]).expect("delete");
    wait_rows(&mut tc, 20);
    wait_deleted(&mut mc, 5);
    wait_deleted(&mut tc, 5);

    // Read parity across the chain, including the mined patterns.
    for items in [vec![1u32], vec![2], vec![3], vec![1, 4]] {
        let want = pc.count(&items).expect("count primary").support;
        assert_eq!(mc.count(&items).expect("count mid").support, want);
        assert_eq!(tc.count(&items).expect("count tail").support, want);
    }
    let pm = pc
        .mine(Scheme::Dfp, SupportThreshold::Count(3), 2)
        .expect("mine primary");
    let tm = tc
        .mine(Scheme::Dfp, SupportThreshold::Count(3), 2)
        .expect("mine tail");
    assert_eq!(pm.patterns, tm.patterns);

    // Deletes are writes: both hops reject them, naming their upstream.
    match mc.delete_with_id(9, &[1]) {
        Err(ClientError::NotPrimary(addr)) => assert_eq!(addr, paddr),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    match tc.delete_with_id(9, &[1]) {
        Err(ClientError::NotPrimary(addr)) => assert_eq!(addr, maddr),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    // So are compactions and folds; probes stay serveable everywhere.
    match mc.maintain(maintain_action::COMPACT, 0) {
        Err(ClientError::NotPrimary(addr)) => assert_eq!(addr, paddr),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    let probe = tc.maintain(maintain_action::PROBE_FPR, 8).expect("probe");
    assert_eq!(probe.deleted_rows, 5);

    tail.join();
    mid.join();
    primary.join();
}

#[test]
fn follower_resyncs_after_primary_compaction_rewrites_the_log() {
    let pb = base("resync_p");
    let fb = base("resync_f");
    let (_gp, _gf) = (Cleanup(pb.clone()), Cleanup(fb.clone()));

    let (primary, paddr) = start(&pb, cfg(64));
    let mut pc = Client::connect_tcp(&paddr).expect("connect primary");
    pc.insert_with_id(1, &batch(0, 12)).expect("insert");
    pc.delete_with_id(2, &[0, 1, 2, 3]).expect("delete");

    let (follower, faddr) = start(&fb, follower_cfg(&paddr, 64));
    let mut fc = Client::connect_tcp(&faddr).expect("connect follower");
    wait_rows(&mut fc, 12);
    wait_deleted(&mut fc, 4);

    // Compaction restarts the primary's row numbering (12 rows -> 8) and
    // rewrites its log as one bootstrap entry.  The follower's cursor is
    // now ahead; the typed resync error must make it wipe and refetch.
    let compacted = pc.maintain(maintain_action::COMPACT, 0).expect("compact");
    assert_eq!(compacted.live_rows, 8);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let stats = fc.stats().expect("stats");
        if stats.contains("\"follower_resyncs\":1")
            && stats.contains("\"replication_lag_rows\":0")
            && fc.count(&[1]).expect("count").rows == 8
        {
            break;
        }
        assert!(Instant::now() < deadline, "follower never resynced: {stats}");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(fc.count(&[1]).expect("count").support, 8);

    // The resynced follower still streams: new commits and deletes land.
    pc.insert_with_id(3, &batch(12, 3)).expect("insert");
    pc.delete_with_id(4, &[12]).expect("delete");
    wait_rows(&mut fc, 11);
    wait_deleted(&mut fc, 1);
    assert_eq!(
        fc.count(&[1]).expect("count").support,
        pc.count(&[1]).expect("count").support
    );

    follower.join();
    primary.join();
}

#[test]
fn sharded_deletes_route_by_tid_and_maintenance_fans_out() {
    let dir = base("shard_dyn");
    let _g = CleanupDir(dir.clone());
    ShardedDeployment::create(&dir, 3, 64, hasher(), 64).expect("create sharded");
    let engine = ShardedEngine::open(&dir, cfg(64)).expect("open sharded");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr().expect("addr").to_string();
    let mut c = Client::connect_tcp(&addr).expect("connect");

    let txns = batch(0, 30);
    c.insert_with_id(1, &txns).expect("insert");

    // Victims land on every shard; the router must split them by the
    // same residue inserts used and sum the per-shard tombstone counts.
    let victims: Vec<u64> = (0..30).filter(|t| t % 4 == 0).collect();
    let shards_hit: HashSet<usize> = victims.iter().map(|&t| route(t, 3)).collect();
    assert_eq!(shards_hit.len(), 3, "victims must span all shards");
    let first = c.delete_with_id(50, &victims).expect("delete");
    assert_eq!(first.deleted, victims.len() as u64);
    assert!(!first.deduped);

    let survivors: Vec<(u64, Vec<u32>)> = txns
        .iter()
        .filter(|(t, _)| t % 4 != 0)
        .cloned()
        .collect();
    for items in [vec![1u32], vec![2], vec![3], vec![4], vec![2, 3]] {
        let got = c.count(&items).expect("count").support;
        assert!(
            got >= exact(&survivors, &items),
            "scatter count under-counts {items:?}"
        );
    }
    assert_eq!(c.count(&[1]).expect("count").support, 22);

    // A router-level retry re-scatters the same per-shard partitions;
    // every shard answers from its window, so the merge reports dedup.
    let retry = c.delete_with_id(50, &victims).expect("retry");
    assert!(retry.deduped, "all shards must dedup the retried delete");
    assert_eq!(retry.deleted, victims.len() as u64);
    assert_eq!(c.count(&[1]).expect("count").support, 22);

    // Maintenance fans out: the probe aggregates all shards' rows, and a
    // compaction reclaims every shard's tombstones behind its own swap.
    let probe = c.maintain(maintain_action::PROBE_FPR, 8).expect("probe");
    assert_eq!(probe.live_rows, 22);
    assert_eq!(probe.deleted_rows, 8);
    let compacted = c.maintain(maintain_action::COMPACT, 0).expect("compact");
    assert_eq!(compacted.live_rows, 22);
    assert_eq!(compacted.deleted_rows, 0);
    assert_eq!(c.count(&[1]).expect("count").support, 22);
    assert_eq!(c.count(&[1]).expect("count").rows, 22);

    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"shard_deleted_rows\":[0,0,0]"), "{stats}");
    assert!(stats.contains("\"deleted_rows\":0"), "{stats}");
    assert!(stats.contains("\"live_rows\":22"), "{stats}");
    assert!(stats.contains("\"shard_fpr\":["), "{stats}");
    handle.join();
}

/// The acceptance storm: a seeded weblog-churn workload (rotating hot
/// set, daily session expirations) drives a deliberately under-sized
/// index until its measured FPR breaches the health threshold; the
/// server's own maintenance policy (here invoked as `AUTO`, exactly what
/// the background maintainer runs each tick) must bring the measured FPR
/// back under the threshold by widening compactions, while counts stay
/// upper bounds of the surviving truth and the files stay fsck-clean.
#[test]
fn weblog_churn_fpr_recovers_after_auto_maintenance() {
    let b = base("weblog_storm");
    let _g = Cleanup(b.clone());
    let seed = seed();
    eprintln!("weblog storm seed {seed} (override with CHAOS_SEED)");

    // A 16-bit index over a 400-file vocabulary: collisions guaranteed.
    // The threshold sits well under the sick index's ~0.2 measured FPR
    // (and well over a healthy one's) so probe variance across seeds
    // cannot flip either assertion.
    let fpr_hi = 0.10;
    let (handle, addr) = start(
        &b,
        ServerConfig {
            fpr_hi,
            fpr_samples: 48,
            min_width: 16,
            ..cfg(16)
        },
    );
    let mut retrying = RetryClient::with_policy(
        ServerAddr::Tcp(addr.clone()),
        RetryPolicy {
            attempts: 5,
            base: Duration::from_millis(5),
            ..RetryPolicy::default()
        },
    );

    let mut weblog = bbs_datagen::WeblogGenerator::new(bbs_datagen::WeblogConfig {
        files: 400,
        hot_fraction: 0.1,
        daily_rotation: 0.1,
        hot_hit_probability: 0.8,
        days: 6,
        sessions_per_day: 120,
        avg_session_len: 6.0,
        churn_rate: 0.15,
        seed,
    });
    let mut inserted: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut dead: HashSet<u64> = HashSet::new();
    while let Some(day) = weblog.next_day() {
        if !day.expired_tids.is_empty() {
            let reply = retrying.delete(&day.expired_tids).expect("delete day");
            assert_eq!(reply.deleted, day.expired_tids.len() as u64);
            dead.extend(day.expired_tids.iter().copied());
        }
        let txns: Vec<(u64, Vec<u32>)> = day
            .transactions
            .iter()
            .map(|t| (t.tid.0, t.items.items().iter().map(|i| i.0).collect()))
            .collect();
        retrying.insert(&txns).expect("insert day");
        inserted.extend(txns);
    }
    let survivors: Vec<(u64, Vec<u32>)> = inserted
        .iter()
        .filter(|(t, _)| !dead.contains(t))
        .cloned()
        .collect();

    let mut c = Client::connect_tcp(&addr).expect("connect");
    let sick = c.maintain(maintain_action::PROBE_FPR, 0).expect("probe");
    assert_eq!(sick.live_rows, survivors.len() as u64);
    assert_eq!(sick.deleted_rows, dead.len() as u64);
    assert!(
        sick.fpr > fpr_hi,
        "a 16-bit index over 400 files must be sick (fpr {})",
        sick.fpr
    );

    // Let the policy heal it: each AUTO tick probes and acts.  Widening
    // compactions double the width until the measured FPR is healthy.
    let mut rounds = 0;
    let healed = loop {
        let reply = c.maintain(maintain_action::AUTO, 0).expect("auto");
        rounds += 1;
        if reply.fpr <= fpr_hi {
            break reply;
        }
        assert_eq!(
            reply.action_taken,
            maintain_action::COMPACT,
            "a sick index must keep compacting wider (round {rounds})"
        );
        assert!(rounds < 12, "maintenance never healed the index");
    };
    eprintln!(
        "healed after {rounds} auto round(s): width {}, fpr {:.4}",
        healed.width, healed.fpr
    );
    assert!(healed.width > 16, "healing must have widened the index");
    assert_eq!(healed.deleted_rows, 0, "compaction reclaims tombstones");
    assert_eq!(healed.live_rows, survivors.len() as u64);

    // Counts remain sound: every estimate upper-bounds the surviving
    // truth, totals are exact, and singles of never-deleted hot files
    // stay queryable.
    let hot: Vec<u32> = weblog.hot_files().iter().take(4).map(|i| i.0).collect();
    for file in hot {
        let got = c.count(&[file]).expect("count").support;
        assert!(got >= exact(&survivors, &[file]), "under-count on {file}");
    }
    let totals = c.count(&[]).expect("count all");
    assert_eq!(totals.support, survivors.len() as u64);
    assert_eq!(totals.rows, survivors.len() as u64);

    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"maintenance_runs\":"), "{stats}");
    handle.join();

    let report = DiskDeployment::verify(&b).expect("fsck");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.deleted_rows, 0);
}
