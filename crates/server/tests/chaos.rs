//! Randomized chaos harness: concurrent inserters-with-retries and
//! counters drive a live server through a fault-injecting TCP proxy
//! (connection resets, mid-stream stalls) while a background thread
//! opens and closes disk-full windows under the committer.  The run is
//! seeded — the schedule prints its seed and honours a `CHAOS_SEED` env
//! override for reproduction.
//!
//! The proxy injects faults the protocol is *designed* to survive:
//! resets (ambiguous outcomes — did the insert commit before the reply
//! died?) and stalls (timeouts that turn into retries).  Payload bit
//! corruption is deliberately not in the schedule: the wire format
//! carries no payload checksum (TCP's own checksum covers the real
//! network), so a flipped bit in a well-formed frame is silently wrong
//! by design — `net_faults.rs` covers what framing *can* reject.
//!
//! Invariants at the end of the storm:
//!
//! * every writer's every batch was acknowledged exactly once — the
//!   final row count equals the number of *distinct* batches, however
//!   many times each was retried (request IDs + the durable dedup
//!   window are what make this hold);
//! * the heap holds exactly the expected transaction IDs, each once;
//! * `fsck` is clean;
//! * a serial offline re-mine of the raw files agrees with the live
//!   server's final `mine` answer.

use bbs_core::Scheme;
use bbs_server::{
    serve, Bind, Client, Engine, RetryClient, RetryPolicy, ServerAddr, ServerConfig,
};
use bbs_storage::{
    mine_in_place, DiskDeployment, FaultPlan, SharedDeployment, SharedFaultPlan,
};
use bbs_tdb::{Itemset, SupportThreshold};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DEFAULT_SEED: u64 = 0xB0B5_CA05;
const WRITERS: u64 = 4;
const BATCHES: u64 = 25;
const BATCH: u64 = 8;
const TOTAL: u64 = WRITERS * BATCHES * BATCH;

fn seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_chaos_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

/// One direction of a proxied connection: forward chunks, rolling the
/// dice on each one — reset the whole connection, or stall mid-stream.
fn pump(mut from: TcpStream, mut to: TcpStream, mut rng: StdRng) {
    let mut buf = [0u8; 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let roll = rng.random::<f64>();
        if roll < 0.015 {
            // Connection reset: both directions die abruptly.  Tearing
            // the link between a commit and its reply is exactly the
            // ambiguity the request-ID window exists to resolve.
            from.shutdown(Shutdown::Both).ok();
            to.shutdown(Shutdown::Both).ok();
            return;
        } else if roll < 0.045 {
            // Mid-stream stall, long enough to trip short client
            // timeouts into retries.
            std::thread::sleep(Duration::from_millis(rng.random_range(20..80u64)));
        }
        if to.write_all(&buf[..n]).is_err() {
            from.shutdown(Shutdown::Both).ok();
            to.shutdown(Shutdown::Both).ok();
            return;
        }
    }
    // Clean EOF on this side: half-close towards the peer.
    to.shutdown(Shutdown::Write).ok();
}

/// A chaos TCP proxy in front of `upstream`.  Every accepted connection
/// gets its own deterministic fault schedule derived from the run seed
/// and a connection counter.
fn chaos_proxy(upstream: String, seed: u64, stop: Arc<AtomicBool>) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    listener.set_nonblocking(true).expect("nonblocking");
    let addr = listener.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || {
        let mut conn_no = 0u64;
        while !stop.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((client, _)) => {
                    conn_no += 1;
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ conn_no.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let upstream = upstream.clone();
                    std::thread::spawn(move || {
                        let Ok(server) = TcpStream::connect(&upstream) else {
                            client.shutdown(Shutdown::Both).ok();
                            return;
                        };
                        client.set_nodelay(true).ok();
                        server.set_nodelay(true).ok();
                        let up_rng = StdRng::seed_from_u64(rng.random::<u64>());
                        let down_rng = StdRng::seed_from_u64(rng.random::<u64>());
                        let (c2, s2) = (
                            client.try_clone().expect("clone"),
                            server.try_clone().expect("clone"),
                        );
                        let up = std::thread::spawn(move || pump(client, server, up_rng));
                        pump(s2, c2, down_rng);
                        up.join().ok();
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
    });
    (addr, handle)
}

fn retry_client(addr: &str) -> RetryClient {
    let mut c = RetryClient::with_policy(
        ServerAddr::Tcp(addr.to_string()),
        RetryPolicy {
            attempts: 60,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
        },
    );
    // Short per-attempt timeout: a stalled or desynced attempt becomes a
    // retry quickly instead of pinning the writer.
    c.set_timeout(Some(Duration::from_secs(1)));
    c
}

#[test]
fn chaos_storm_preserves_exactly_once_and_matches_offline_remine() {
    let seed = seed();
    println!("chaos seed: {seed} (override with CHAOS_SEED=<u64>)");
    let b = temp("storm");
    let _g = Cleanup(b.clone());

    // Engine over fault-injectable backends: the proxy attacks the wire,
    // the plan attacks the disk.
    let plan: SharedFaultPlan = FaultPlan::counting();
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let shared =
        SharedDeployment::open_faulty(&b, 64, hasher, 256, plan.clone()).expect("open shared");
    let engine = Engine::with_shared(
        shared,
        ServerConfig {
            width: 64,
            cache_pages: 256,
            commit_window: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let direct = handle.tcp_addr().expect("addr").to_string();

    let proxy_stop = Arc::new(AtomicBool::new(false));
    let (proxied, proxy_handle) = chaos_proxy(direct.clone(), seed, Arc::clone(&proxy_stop));

    // Disk chaos: open and close out-of-space windows while writers run.
    let writers_done = Arc::new(AtomicBool::new(false));
    let disk_chaos = {
        let plan = plan.clone();
        let done = Arc::clone(&writers_done);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD15C));
        std::thread::spawn(move || {
            let mut windows = 0u32;
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(rng.random_range(40..120u64)));
                plan.set_disk_full(true);
                windows += 1;
                std::thread::sleep(Duration::from_millis(rng.random_range(20..60u64)));
                plan.set_disk_full(false);
            }
            windows
        })
    };

    // Writers: every batch through the retrying client, over the chaos
    // proxy.  Request IDs make retries of committed batches dedup hits.
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let proxied = proxied.clone();
        writer_handles.push(std::thread::spawn(move || {
            let mut client = retry_client(&proxied);
            for batch_no in 0..BATCHES {
                let first_tid = (w * BATCHES + batch_no) * BATCH;
                let txns: Vec<(u64, Vec<u32>)> = (first_tid..first_tid + BATCH)
                    .map(|tid| (tid, vec![1, 2 + (tid % 5) as u32]))
                    .collect();
                let reply = client
                    .insert(&txns)
                    .unwrap_or_else(|e| panic!("writer {w} batch {batch_no}: {e}"));
                assert_eq!(
                    reply.appended, BATCH,
                    "writer {w} batch {batch_no}: wrong receipt"
                );
            }
            client.stats()
        }));
    }

    // Counters: snapshot consistency must hold mid-storm — count({1})
    // equals the answering snapshot's rows, and rows never shrink.
    let mut counter_handles = Vec::new();
    for _ in 0..2 {
        let proxied = proxied.clone();
        let done = Arc::clone(&writers_done);
        counter_handles.push(std::thread::spawn(move || {
            let mut client = retry_client(&proxied);
            let mut last_rows = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) {
                let reply = match client.count(&[1]) {
                    Ok(r) => r,
                    // Budget exhausted under a hostile stretch: fine,
                    // reconnect on the next loop.
                    Err(_) => continue,
                };
                assert_eq!(
                    reply.support, reply.rows,
                    "count({{1}}) must equal visible rows"
                );
                assert!(reply.rows >= last_rows, "row counts never shrink");
                last_rows = reply.rows;
                observations += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            observations
        }));
    }

    let mut retry_totals = bbs_server::RetryStats::default();
    for h in writer_handles {
        let stats = h.join().expect("writer");
        retry_totals.attempts += stats.attempts;
        retry_totals.retries += stats.retries;
        retry_totals.reconnects += stats.reconnects;
        retry_totals.deduped += stats.deduped;
        retry_totals.gave_up += stats.gave_up;
    }
    writers_done.store(true, Ordering::Release);
    let disk_windows = disk_chaos.join().expect("disk chaos");
    plan.set_disk_full(false);
    for h in counter_handles {
        let obs = h.join().expect("counter");
        assert!(obs > 0, "counters observed the run");
    }
    proxy_stop.store(true, Ordering::Release);

    println!(
        "client totals: {} attempts, {} retries, {} reconnects, {} deduped, {} gave up; {} disk-full windows",
        retry_totals.attempts,
        retry_totals.retries,
        retry_totals.reconnects,
        retry_totals.deduped,
        retry_totals.gave_up,
        disk_windows
    );
    assert_eq!(retry_totals.gave_up, 0, "no writer exhausted its budget");
    assert!(retry_totals.attempts >= WRITERS * BATCHES);

    // Final state through the *direct* connection: the storm is over.
    let mut client = Client::connect_tcp(&direct).expect("connect direct");
    client.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let final_count = client.count(&[1]).expect("final count");
    assert_eq!(
        (final_count.support, final_count.rows),
        (TOTAL, TOTAL),
        "exactly-once: every distinct batch appended exactly once"
    );
    let threshold = SupportThreshold::Count(TOTAL / 5);
    let mined = client.mine(Scheme::Dfp, threshold, 0).expect("live mine");
    assert_eq!(mined.rows, TOTAL);

    // The stats document carries the chaos counters.
    let stats_json = client.stats().expect("stats");
    for key in [
        "\"dedup_hits\":",
        "\"disk_full\":",
        "\"frame_errors\":",
        "\"writer_heals\":",
        "\"overloaded\":",
    ] {
        assert!(stats_json.contains(key), "stats missing {key}");
    }
    // Engine state is in there too: role, the live epoch, and the
    // committed row count must all reflect the storm's end state.
    assert!(stats_json.contains("\"role\":\"primary\""), "role in stats");
    assert!(
        stats_json.contains(&format!("\"rows\":{TOTAL}")),
        "snapshot rows in stats"
    );
    assert!(
        stats_json.contains(&format!("\"committed_rows\":{TOTAL}")),
        "committed rows in stats"
    );
    assert!(
        stats_json.contains(&format!("\"epoch\":{}", final_count.epoch)),
        "current epoch in stats (no commits since the final count)"
    );
    assert!(stats_json.contains("\"committed_seq\":"), "seq in stats");
    println!("server stats: {stats_json}");
    if seed == DEFAULT_SEED {
        // The default schedule provably injects faults; a tame override
        // seed is allowed to dodge them.
        assert!(
            retry_totals.retries > 0,
            "default seed must force client retries"
        );
        // Every deduped reply a client *saw* was a server window hit;
        // the server may have more (a deduped reply can itself be lost
        // to a reset and the next retry hits the window again).
        assert!(
            dedup_hits(&stats_json) >= retry_totals.deduped,
            "server dedup hits must cover every client-observed dedup"
        );
    }

    client.shutdown_server().expect("shutdown");
    handle.join();
    proxy_handle.join().expect("proxy");

    // fsck must be clean after the storm.
    let report = DiskDeployment::verify(&b).expect("verify");
    assert!(report.is_clean(), "fsck after chaos:\n{report}");

    // Offline: exactly the expected transactions, each exactly once.
    let hasher: Arc<dyn bbs_hash::ItemHasher> = Arc::new(bbs_hash::Md5BloomHasher::new(4));
    let mut dep = DiskDeployment::open(&b, 64, hasher, 256).expect("reopen");
    assert_eq!(dep.db.len(), TOTAL);
    let loaded = dep.db.load().expect("load heap");
    let mut tids: Vec<u64> = loaded.transactions().iter().map(|t| t.tid.0).collect();
    tids.sort_unstable();
    let expected: Vec<u64> = (0..TOTAL).collect();
    assert_eq!(tids, expected, "no duplicate and no missing transaction");

    // Serial offline re-mine agrees with the live server's last answer.
    let (offline, _stats) = mine_in_place(&mut dep, Scheme::Dfp, threshold, 1).expect("re-mine");
    assert_eq!(
        offline.patterns.len(),
        mined.patterns.len(),
        "live mine and offline re-mine must agree on the pattern count"
    );
    for (items, support, _approx) in &mined.patterns {
        let set = Itemset::from_values(items);
        assert_eq!(
            offline.patterns.support(&set),
            Some(*support),
            "support mismatch for {items:?}"
        );
    }
}

fn dedup_hits(stats_json: &str) -> u64 {
    let key = "\"dedup_hits\":";
    let at = stats_json.find(key).expect("dedup_hits in stats") + key.len();
    stats_json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter")
}
