//! Network-fault injection against a live server: torn frames, garbage
//! bytes, oversized length prefixes, bit-corrupted payloads, and
//! mid-frame stalls, all over real sockets.
//!
//! The invariants under test: a bad frame gets the typed `BadFrame`
//! response and its connection is closed; the server never panics,
//! never wedges, and keeps serving well-formed clients throughout; and
//! every parse failure is counted in the `frame_errors` metric.

use bbs_server::proto::{self, Reply, Request, Response, MAX_FRAME};
use bbs_server::{serve, Bind, Client, ClientError, Engine, ServerConfig, ServerHandle};
use bbs_storage::DiskDeployment;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_netfault_{}_{}", std::process::id(), name));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn start(name: &str) -> (ServerHandle, String, Cleanup) {
    let base = temp(name);
    let guard = Cleanup(base.clone());
    let engine = Engine::open(
        &base,
        ServerConfig {
            width: 64,
            cache_pages: 128,
            commit_window: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .expect("open engine");
    let handle = serve(
        engine,
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let addr = handle.tcp_addr().expect("tcp addr").to_string();
    (handle, addr, guard)
}

/// Sends `payload` as one frame and returns the decoded response, plus
/// whether the server closed the connection afterwards.
fn send_raw(addr: &str, payload: &[u8]) -> (Option<Response>, bool) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    proto::write_frame(&mut s, payload).expect("write frame");
    let resp = proto::read_frame(&mut s)
        .ok()
        .flatten()
        .and_then(|p| Response::decode(&p).ok());
    // After the response, a closed connection reads as EOF.
    let mut probe = [0u8; 1];
    let closed = matches!(s.read(&mut probe), Ok(0));
    (resp, closed)
}

/// The server still answers a well-formed client.
fn assert_still_serving(addr: &str) {
    let mut c = Client::connect_tcp(addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).expect("timeout");
    c.ping().expect("ping after fault");
}

fn frame_errors(addr: &str) -> u64 {
    let mut c = Client::connect_tcp(addr).expect("connect");
    let json = c.stats().expect("stats");
    let key = "\"frame_errors\":";
    let at = json.find(key).expect("frame_errors in stats") + key.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter")
}

#[test]
fn garbage_payload_gets_bad_frame_then_close() {
    let (handle, addr, _g) = start("garbage");
    let (resp, closed) = send_raw(&addr, &[0xDE, 0xAD, 0xBE, 0xEF, 0x42]);
    assert!(
        matches!(resp, Some(Response::BadFrame(_))),
        "got {resp:?}"
    );
    assert!(closed, "connection must close after a bad frame");
    assert_still_serving(&addr);
    assert_eq!(frame_errors(&addr), 1);
    handle.join();
}

#[test]
fn truncated_request_gets_bad_frame_then_close() {
    let (handle, addr, _g) = start("truncated");
    // A valid count request with its tail cut off: the frame itself is
    // complete (length prefix matches), but the body no longer parses.
    let good = Request::Count {
        items: vec![1, 2, 3],
    }
    .encode();
    let (resp, closed) = send_raw(&addr, &good[..good.len() - 3]);
    assert!(matches!(resp, Some(Response::BadFrame(_))), "got {resp:?}");
    assert!(closed);
    assert_still_serving(&addr);
    handle.join();
}

#[test]
fn bit_flipped_opcode_gets_bad_frame_then_close() {
    let (handle, addr, _g) = start("bitflip");
    let mut bad = Request::Insert {
        req_id: 9,
        txns: vec![(0, vec![1, 2])],
    }
    .encode();
    bad[0] ^= 0x80; // no opcode lives up there
    let (resp, closed) = send_raw(&addr, &bad);
    assert!(matches!(resp, Some(Response::BadFrame(_))), "got {resp:?}");
    assert!(closed);
    assert_still_serving(&addr);
    handle.join();
}

#[test]
fn oversized_length_prefix_gets_bad_frame_then_close() {
    let (handle, addr, _g) = start("oversize");
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    // Claim a frame bigger than the protocol allows; never send it.
    let len = (MAX_FRAME as u32) + 1;
    s.write_all(&len.to_le_bytes()).expect("header");
    let resp = proto::read_frame(&mut s)
        .ok()
        .flatten()
        .and_then(|p| Response::decode(&p).ok());
    assert!(matches!(resp, Some(Response::BadFrame(_))), "got {resp:?}");
    let mut probe = [0u8; 1];
    assert!(matches!(s.read(&mut probe), Ok(0)), "connection closed");
    assert_still_serving(&addr);
    assert!(frame_errors(&addr) >= 1);
    handle.join();
}

#[test]
fn torn_frame_mid_payload_does_not_wedge_the_server() {
    let (handle, addr, _g) = start("torn");
    {
        // Announce 64 bytes, deliver 10, vanish.  The handler is pinned
        // until its request deadline, but the server keeps serving
        // everyone else meanwhile.
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(&64u32.to_le_bytes()).expect("header");
        s.write_all(&[7u8; 10]).expect("partial payload");
        // Dropping the stream here resets the connection mid-frame.
    }
    assert_still_serving(&addr);
    handle.join();
}

#[test]
fn mid_frame_stall_is_tolerated_not_truncated() {
    let (handle, addr, _g) = start("stall");
    // Trickle a valid ping frame byte by byte with pauses much longer
    // than the server's poll tick: timeouts mid-frame must keep the
    // partial bytes, not desync or drop the request.
    let payload = Request::Ping.encode();
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
    s.set_nodelay(true).ok();
    for b in framed {
        s.write_all(&[b]).expect("write byte");
        std::thread::sleep(Duration::from_millis(60));
    }
    let resp = proto::read_frame(&mut s)
        .ok()
        .flatten()
        .and_then(|p| Response::decode(&p).ok());
    assert!(
        matches!(resp, Some(Response::Ok(Reply::Pong))),
        "stalled-but-complete frame still answers: {resp:?}"
    );
    handle.join();
}

#[test]
fn a_storm_of_bad_frames_never_starves_good_clients() {
    let (handle, addr, _g) = start("storm");
    let mut good = Client::connect_tcp(&addr).expect("connect");
    good.set_timeout(Some(Duration::from_secs(10))).expect("timeout");

    for i in 0..20u8 {
        // Alternate corruption styles.
        let payload: Vec<u8> = match i % 4 {
            0 => vec![0xFF, i, i, i],
            1 => Request::Ping.encode()[..0].to_vec(), // empty payload
            2 => {
                let mut p = Request::Probe { row: u64::from(i) }.encode();
                p.truncate(p.len() - 1);
                p
            }
            _ => vec![i; 33],
        };
        let (resp, _) = send_raw(&addr, &payload);
        assert!(
            matches!(resp, Some(Response::BadFrame(_))),
            "iteration {i}: {resp:?}"
        );
        // The long-lived good connection is unaffected in between.
        good.ping().expect("good client survives the storm");
    }
    assert_eq!(frame_errors(&addr), 20);

    // And the data path still works end to end.
    let reply = good
        .insert_with_id(1234, &[(0, vec![5, 6]), (1, vec![5])])
        .expect("insert");
    assert_eq!((reply.first_row, reply.appended, reply.deduped), (0, 2, false));
    let reply = good.insert_with_id(1234, &[(0, vec![5, 6]), (1, vec![5])]).expect("retry");
    assert!(reply.deduped, "retry answered from the window");
    assert_eq!(good.count(&[5]).expect("count").support, 2);
    handle.join();
}

#[test]
fn client_typed_error_for_bad_frame_is_retryable() {
    // When the *client's* bytes arrive garbled (simulated here by
    // sending the garbage ourselves on a raw socket and decoding with
    // the client error mapping), the error classifies as retryable.
    let (handle, addr, _g) = start("retryable");
    let (resp, _) = send_raw(&addr, &[0xBA, 0xD0]);
    let err = match resp {
        Some(Response::BadFrame(msg)) => ClientError::BadFrame(msg),
        other => panic!("expected BadFrame, got {other:?}"),
    };
    assert!(err.is_retryable());
    handle.join();
}
