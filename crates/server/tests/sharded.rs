//! The shard router end-to-end: a `ShardedEngine` served over TCP must
//! be indistinguishable from an unsharded server holding the same
//! transactions — same counts, same mined patterns, same probe'd rows —
//! while routing inserts to N independent per-shard commit pipelines,
//! deduplicating retries per shard, and reporting shard topology and
//! scatter-gather latencies in its stats document.

use bbs_core::Scheme;
use bbs_hash::{ItemHasher, Md5BloomHasher};
use bbs_server::{serve, Bind, Client, Engine, RequestHandler, ServerConfig, ShardedEngine};
use bbs_shard::{route, ShardedDeployment};
use bbs_storage::diskbbs::DiskDeployment;
use bbs_tdb::SupportThreshold;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn base(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbs_sharded_srv_{}_{}", std::process::id(), name));
    p
}

struct CleanupDir(PathBuf);
impl Drop for CleanupDir {
    fn drop(&mut self) {
        ShardedDeployment::remove_files(&self.0).ok();
    }
}

struct CleanupBase(PathBuf);
impl Drop for CleanupBase {
    fn drop(&mut self) {
        DiskDeployment::remove_files(&self.0).ok();
    }
}

fn hasher() -> Arc<dyn ItemHasher> {
    Arc::new(Md5BloomHasher::new(4))
}

fn cfg() -> ServerConfig {
    ServerConfig {
        cache_pages: 128,
        queue_capacity: 32,
        ..ServerConfig::default()
    }
}

/// Creates an N-shard deployment directory (default width + hasher, the
/// ones `ShardedEngine::open` uses).
fn create_shards(dir: &Path, shards: usize) {
    ShardedDeployment::create(dir, shards, 64, hasher(), 64).expect("create sharded");
}

fn batch(start: u64, n: u64) -> Vec<(u64, Vec<u32>)> {
    (start..start + n)
        .map(|i| {
            let mut items = vec![1, 2 + (i % 3) as u32];
            if i % 5 == 0 {
                items.push(9);
            }
            (i, items)
        })
        .collect()
}

#[test]
fn sharded_server_matches_unsharded_over_the_wire() {
    const SHARDS: usize = 4;
    const N: u64 = 120;
    let sd = base("parity_s");
    let ub = base("parity_u");
    let _g = (CleanupDir(sd.clone()), CleanupBase(ub.clone()));
    create_shards(&sd, SHARDS);

    let sharded = ShardedEngine::open(&sd, cfg()).expect("open sharded");
    let unsharded = Engine::open(&ub, cfg()).expect("open unsharded");
    let sh = serve(
        Arc::clone(&sharded),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve sharded");
    let uh = serve(
        Arc::clone(&unsharded),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve unsharded");
    let mut sc = Client::connect_tcp(sh.tcp_addr().unwrap().to_string()).expect("connect");
    let mut uc = Client::connect_tcp(uh.tcp_addr().unwrap().to_string()).expect("connect");

    let txns = batch(0, N);
    let sr = sc.insert(&txns).expect("sharded insert");
    let ur = uc.insert(&txns).expect("unsharded insert");
    assert_eq!(sr.appended, N);
    assert_eq!(ur.appended, N);
    assert!(!sr.deduped);

    // The batch landed partitioned by TID residue, one pipeline each.
    let engines = sharded.engines();
    for (i, e) in engines.iter().enumerate() {
        let want = (0..N).filter(|t| route(*t, SHARDS) == i).count() as u64;
        assert_eq!(e.snapshot().rows(), want, "shard {i} rows");
    }

    // Counting parity, single and batched.
    for items in [vec![1u32], vec![2], vec![1, 9], vec![4, 9], vec![77]] {
        let s = sc.count(&items).expect("count").support;
        let u = uc.count(&items).expect("count").support;
        assert_eq!(s, u, "count {items:?}");
    }
    let queries: Vec<&[u32]> = vec![&[1], &[2], &[9], &[1, 3], &[2, 9], &[]];
    let s = sc.count_many(&queries).expect("count_many");
    let u = uc.count_many(&queries).expect("count_many");
    assert_eq!(s.supports, u.supports);
    assert_eq!(s.rows, N);

    // Mining parity: bit-for-bit patterns, supports and approx markers.
    for scheme in [Scheme::Sfs, Scheme::Dfp] {
        for threads in [1u16, 3] {
            let sm = sc
                .mine(scheme, SupportThreshold::Count(20), threads)
                .expect("sharded mine");
            let um = uc
                .mine(scheme, SupportThreshold::Count(20), threads)
                .expect("unsharded mine");
            assert_eq!(sm.patterns, um.patterns, "{scheme:?} x{threads}");
            assert_eq!(sm.rows, N);
        }
    }

    // Probing the concatenated row space: shard 0's rows first, then
    // shard 1's, … — together exactly the inserted TID set.
    let mut seen = Vec::new();
    for row in 0..N {
        let (tid, _) = sc.probe(row).expect("probe").expect("present");
        seen.push(tid);
    }
    let mut want: Vec<u64> = Vec::new();
    for shard in 0..SHARDS {
        want.extend((0..N).filter(|t| route(*t, SHARDS) == shard));
    }
    assert_eq!(seen, want);
    assert_eq!(sc.probe(N).expect("probe"), None);

    // Stats document: shard topology + scatter-gather latencies.
    let json = sc.stats().expect("stats");
    assert!(json.contains(&format!("\"shards\":{SHARDS}")), "{json}");
    assert!(json.contains(&format!("\"rows\":{N}")));
    assert!(json.contains("\"shard_rows\":[30,30,30,30]"));
    assert!(json.contains("\"shard_lag\":[0,0,0,0]"));
    // Per-shard fault counters, all zero on this clean run.
    assert!(json.contains("\"scatter_errors\":[0,0,0,0]"), "{json}");
    assert!(json.contains("\"timeouts\":[0,0,0,0]"));
    assert!(json.contains("\"failovers\":[0,0,0,0]"));
    assert!(json.contains("\"scatter_us\":{\"insert\":{\"count\":1,"));
    assert!(json.contains("\"shard_queue_depth\":["));
    // Endpoint counters live on the router, not the shards.
    assert!(json.contains("\"mine\":{\"requests\":4,"));
    let scatter = sharded.scatter_metrics();
    assert_eq!(scatter.insert.count(), 1);
    assert!(scatter.count.count() >= 5);
    assert!(scatter.count_many.count() >= 1);
    assert_eq!(scatter.mine.count(), 4);
    assert!(scatter.probe.count() >= N);

    sh.join();
    uh.join();
}

#[test]
fn retries_dedup_per_shard_and_drain_is_graceful() {
    const SHARDS: usize = 3;
    let sd = base("dedup_s");
    let _g = CleanupDir(sd.clone());
    create_shards(&sd, SHARDS);
    let sharded = ShardedEngine::open(&sd, cfg()).expect("open");
    let handle = serve(
        Arc::clone(&sharded),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap().to_string()).expect("connect");

    let txns = batch(0, 30);
    let first = client.insert_with_id(7, &txns).expect("insert");
    assert_eq!((first.appended, first.deduped), (30, false));

    // A client retry after a lost reply: every shard answers from its
    // own exactly-once window; nothing appends twice.
    let retry = client.insert_with_id(7, &txns).expect("retry");
    assert_eq!((retry.appended, retry.deduped), (30, true));
    assert_eq!(client.count(&[1]).expect("count").support, 30);
    for e in sharded.engines() {
        assert_eq!(
            e.metrics()
                .dedup_hits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    // Shutdown over the wire drains every shard's pipeline.
    client.shutdown_server().expect("shutdown");
    handle.wait();
    assert!(sharded.is_draining());
    for e in sharded.engines() {
        assert!(e.is_draining());
    }

    // A fresh open still serves the committed 30 rows.
    let reopened = ShardedEngine::open(&sd, cfg()).expect("reopen");
    let (supports, _, rows) = reopened.count_many(&[vec![1]]).expect("count");
    assert_eq!((supports[0], rows), (30, 30));
    reopened.join();
}

#[test]
fn router_rejects_follower_mode_and_replication_endpoints() {
    let sd = base("reject_s");
    let _g = CleanupDir(sd.clone());
    create_shards(&sd, 2);
    match ShardedEngine::open(
        &sd,
        ServerConfig {
            follow: Some("127.0.0.1:1".into()),
            ..cfg()
        },
    ) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("follower mode must be rejected"),
    }

    let sharded = ShardedEngine::open(&sd, cfg()).expect("open");
    let handle = serve(
        Arc::clone(&sharded),
        &Bind {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
        },
    )
    .expect("serve");
    let mut client = Client::connect_tcp(handle.tcp_addr().unwrap().to_string()).expect("connect");
    let err = client.replicate(0, 0, 16).expect_err("replicate must be typed error");
    assert!(matches!(err, bbs_server::ClientError::Server(_)));
    let err = client.promote().expect_err("promote must be typed error");
    assert!(matches!(err, bbs_server::ClientError::Server(_)));
    // The router itself keeps serving after the rejections.
    assert_eq!(client.count(&[1]).expect("count").support, 0);
    handle.join();
}

#[test]
fn commit_pipelines_run_per_shard() {
    // With a commit window, each shard coalesces its own producers: the
    // per-shard batch-size histograms prove every pipeline committed
    // independently (and only its own residue class).
    const SHARDS: usize = 4;
    let sd = base("pipelines");
    let _g = CleanupDir(sd.clone());
    create_shards(&sd, SHARDS);
    let sharded = ShardedEngine::open(
        &sd,
        ServerConfig {
            commit_window: Duration::from_millis(5),
            ..cfg()
        },
    )
    .expect("open");

    let writers = 8u64;
    let per = 40u64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let sharded = &sharded;
            scope.spawn(move || {
                let txns: Vec<bbs_tdb::Transaction> = (0..per)
                    .map(|i| {
                        bbs_tdb::Transaction::new(
                            w * per + i,
                            bbs_tdb::Itemset::from_values(&[3, (w % 4) as u32 + 10]),
                        )
                    })
                    .collect();
                let outcome = sharded.insert_with_id(1 + w, txns);
                assert!(
                    matches!(outcome, bbs_server::InsertOutcome::Committed { .. }),
                    "writer {w}: {outcome:?}"
                );
            });
        }
    });
    let total = writers * per;
    let (supports, _, rows) = sharded.count_many(&[vec![3]]).expect("count");
    assert_eq!((supports[0], rows), (total, total));
    for (i, e) in sharded.engines().iter().enumerate() {
        let m = e.metrics();
        assert!(m.batch_size.count() >= 1, "shard {i} never committed");
        assert_eq!(m.batch_size.sum(), total / SHARDS as u64, "shard {i} rows");
    }
    sharded.join();
}
