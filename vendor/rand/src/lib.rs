//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build container has no registry access, so the workspace vendors the
//! exact surface its code uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `random::<f64>()`, `random::<bool>()`, and
//! `random_range(a..b)` for `u32`/`u64`/`usize`.  The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic per seed, which is
//! all the datagen and test code relies on.

#![forbid(unsafe_code)]

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw generator output (the subset of
/// rand's `StandardUniform` distribution the workspace uses).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}

impl StandardSample for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Sample;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> Self::Sample;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Sample = $t;
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift keeps the modulo bias negligible for the
                // test/datagen spans used here (all far below 2^32).
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + r as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Sample {
        range.sample_from(self)
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let u = rng.random_range(5u32..17);
            assert!((5..17).contains(&u));
            let n = rng.random_range(0usize..3);
            assert!(n < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
