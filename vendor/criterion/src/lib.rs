//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build container has no registry access, so the workspace vendors the
//! surface its benches use: [`Criterion::bench_function`], benchmark groups
//! with throughput annotations, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.  Measurement is a plain
//! warm-up + timed-batch loop reporting mean ns/iter — adequate for the
//! relative comparisons the benches make, with none of real criterion's
//! statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

/// Runs one benchmark body via [`Bencher::iter`].
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and per-call cost probe.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().as_nanos().max(1) as u64;
        // Aim for ~50 ms of measurement, capped to keep long benches usable.
        let target_ns: u64 = 50_000_000;
        let iters = (target_ns / probe).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        self.mean_ns = elapsed / iters as f64;
        self.iters = iters;
    }
}

fn report(group: Option<&str>, name: &str, throughput: Option<Throughput>, b: &Bencher) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            format!("  {:.1} MiB/s", n as f64 / b.mean_ns * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            format!("  {:.1} elem/s", n as f64 / b.mean_ns * 1e9)
        }
        _ => String::new(),
    };
    println!(
        "bench {label:50} {:>14.1} ns/iter ({} iters){rate}",
        b.mean_ns, b.iters
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the simple
    /// timing loop sizes itself).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(Some(&self.name), name, self.throughput, &b);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.name, self.throughput, &b);
        self
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(None, name, None, &b);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(10);
        g.throughput(Throughput::Elements(1));
        g.bench_function("mul", |b| b.iter(|| 3u64 * 7));
        g.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| x ^ 0xFF)
        });
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn group_runs_every_target() {
        benches();
    }
}
