//! Offline drop-in subset of the `proptest` API.
//!
//! The build container has no registry access, so the workspace vendors the
//! surface its property tests use: the [`proptest!`] macro, the
//! `prop_assert*` / [`prop_assume!`] macros, [`strategy::Strategy`] with
//! `prop_map`, integer-range and [`any`] strategies, and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its case number and the generation is fully deterministic (seeded from
//! the test function's name and the case index), so failures reproduce
//! exactly on re-run.

#![forbid(unsafe_code)]

/// Deterministic case generation: the RNG and run configuration.
pub mod test_runner {
    /// Run configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// FNV-1a over `bytes` — used to derive a per-property seed from the
    /// test function's name.
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The deterministic generator strategies sample from (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is a pure function of `seed`.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Types with a canonical whole-domain strategy (see [`crate::any`]).
    pub trait ArbitraryValue {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The whole-domain strategy returned by [`crate::any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Element-count specifications accepted by the collection strategies.
    pub trait SizeRange {
        /// Draws a target size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo) as u64 + 1) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size drawn from `size`.
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A set of distinct values from `element`, with target size drawn from
    /// `size`.  If the element domain is too small to reach the target, the
    /// set is as large as a bounded number of draws could make it.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < 32 + n * 16 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Everything a property test module needs, in one `use`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property (panics with the condition text).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`] — one test fn per munch step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __fn_seed = $crate::test_runner::fnv1a(stringify!($name).as_bytes());
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::new(
                    __fn_seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $(
                            let $arg = $crate::strategy::Strategy::sample(
                                &($strat), &mut __rng,
                            );
                        )+
                        $body
                    }),
                );
                if let ::std::result::Result::Err(__e) = __outcome {
                    eprintln!(
                        "proptest: {} failed at case {} of {} (deterministic; \
                         re-run reproduces it)",
                        stringify!($name), __case, __cfg.cases,
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in 0usize..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b <= 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(any::<u8>(), 2..5),
            s in crate::collection::btree_set(0u32..1000, 3..=3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(s.len(), 3);
        }

        #[test]
        fn prop_map_and_assume_work(n in 0u64..100) {
            prop_assume!(n != 50);
            let doubled = (0u64..100).prop_map(|x| x * 2);
            let mut rng = crate::test_runner::TestRng::new(n);
            let d = Strategy::sample(&doubled, &mut rng);
            prop_assert!(d % 2 == 0);
            prop_assert_ne!(n, 50);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(any::<u64>(), 5..10);
        let a = strat.sample(&mut crate::test_runner::TestRng::new(9));
        let b = strat.sample(&mut crate::test_runner::TestRng::new(9));
        assert_eq!(a, b);
    }
}
